package rica_test

import (
	"fmt"
	"testing"
	"time"

	"rica"
)

// goldenDuration keeps the 15-run grid fast enough for CI while long
// enough that every protocol exchanges routes, breaks links, and drops
// packets — the behaviours a refactor could silently perturb.
const goldenDuration = 10 * time.Second

// golden holds the pre-refactor fingerprints: one per protocol × seed,
// captured from commit 198e2b1 (before the spatial-grid radio core), so
// TestGoldenBitIdentical proves the grid/snapshot path reproduces the
// brute-force scans bit-for-bit. Regenerate with
// `go test -run TestGoldenGenerate -v` ONLY for a change that is meant
// to alter simulation results, and say so in the commit message.
var golden = map[string]string{
	"AODV/1":      "gen=1016 del=623 drop[congestion]=79 drop[no-route]=255 drop[link-break]=3 delay=388189915 ratio=0x1.39f3e7cf9f3e8p-01 ovh=0x1.c2b999999999ap+15 ctl=2165 ctldrop=0 lt=0x1.dfe88700fe2p+16 hops=0x1.dcdde4e12e6efp+01 csi=0x1.52d3de23ff035p+03 hopsall=0x1.5666666666666p+01 csiall=0x1.e54cccccccccap+02 maxhops=8 p50=264032619 p99=1396730267 max=1600711396 goodput=0x1.f266666666666p+17",
	"AODV/2":      "gen=1023 del=680 drop[congestion]=50 drop[no-route]=254 drop[link-break]=5 delay=389415249 ratio=0x1.5455154551545p-01 ovh=0x1.eb93333333333p+15 ctl=2466 ctldrop=2 lt=0x1.0f04afbfa1236p+17 hops=0x1.c727272727272p+01 csi=0x1.1545641c6e5a1p+03 hopsall=0x1.3ee65fc604a8cp+01 csiall=0x1.857afe6fc28a6p+02 maxhops=7 p50=243467026 p99=2218943883 max=2333242360 goodput=0x1.1p+18",
	"AODV/3":      "gen=1014 del=719 drop[congestion]=89 drop[no-route]=141 drop[link-break]=7 delay=558930549 ratio=0x1.6b0b9d089575ap-01 ovh=0x1.ae53333333333p+15 ctl=2045 ctldrop=3 lt=0x1.c54d1731bb9a9p+16 hops=0x1.a6741283bd1p+01 csi=0x1.3f81df715a231p+03 hopsall=0x1.4fcc95f549e87p+01 csiall=0x1.f63faafec1ea9p+02 maxhops=7 p50=304287171 p99=2322355549 max=2670266504 goodput=0x1.1f9999999999ap+18",
	"RICA/1":      "gen=1016 del=886 drop[congestion]=56 drop[no-route]=33 drop[link-break]=16 delay=321995136 ratio=0x1.be7cf9f3e7cfap-01 ovh=0x1.8556666666666p+17 ctl=10135 ctldrop=54 lt=0x1.493aac8bfc692p+17 hops=0x1.208171d78c6cap+02 csi=0x1.2098d652cc632p+03 hopsall=0x1.0865436c3cf6fp+02 csiall=0x1.0798ab871a9c5p+03 maxhops=11 p50=214701280 p99=1364085023 max=1472348814 goodput=0x1.6266666666666p+18",
	"RICA/2":      "gen=1023 del=845 drop[congestion]=25 drop[no-route]=119 drop[link-break]=9 delay=274494182 ratio=0x1.a6e9ba6e9ba6fp-01 ovh=0x1.46eb333333333p+17 ctl=8134 ctldrop=148 lt=0x1.6e9c08f285269p+17 hops=0x1.4964477f8ba9fp+02 csi=0x1.196d32c9b8d1dp+03 hopsall=0x1.18d1508b8b07bp+02 csiall=0x1.e0123901e891dp+02 maxhops=69 p50=163839999 p99=2133524414 max=3178069271 goodput=0x1.52p+18",
	"RICA/3":      "gen=1014 del=875 drop[congestion]=49 drop[no-route]=60 drop[link-break]=6 delay=318744940 ratio=0x1.b9d089575a61fp-01 ovh=0x1.4adb333333333p+17 ctl=8330 ctldrop=110 lt=0x1.614007697221bp+17 hops=0x1.435d548d9ac53p+02 csi=0x1.21eb851eb852ap+03 hopsall=0x1.2052bf5a814bp+02 csiall=0x1.02a55eee9a33dp+03 maxhops=9 p50=207187790 p99=2217806906 max=2278506505 goodput=0x1.5ep+18",
	"BGCA/1":      "gen=1016 del=673 drop[congestion]=99 drop[no-route]=226 delay=414254134 ratio=0x1.53264c993264dp-01 ovh=0x1.59dcccccccccdp+16 ctl=3510 ctldrop=19 lt=0x1.42b470e94029ap+17 hops=0x1.062e6839d197cp+02 csi=0x1.11a06aa140dd8p+03 hopsall=0x1.ab9b7267a19a7p+01 csiall=0x1.b13965b909ca6p+02 maxhops=9 p50=198958936 p99=2199694319 max=2285126640 goodput=0x1.0d33333333333p+18",
	"BGCA/2":      "gen=1023 del=764 drop[congestion]=31 drop[no-route]=202 delay=272522162 ratio=0x1.7e5f97e5f97e6p-01 ovh=0x1.5ee999999999ap+16 ctl=3599 ctldrop=51 lt=0x1.58188e68923d7p+17 hops=0x1.0ca632ee936f4p+02 csi=0x1.facce83fe7fcp+02 hopsall=0x1.a09c1dc90d186p+01 csiall=0x1.89b5895f4304ep+02 maxhops=8 p50=147895518 p99=1451173395 max=2161699415 goodput=0x1.319999999999ap+18",
	"BGCA/3":      "gen=1014 del=843 drop[congestion]=38 drop[no-route]=118 delay=317930516 ratio=0x1.a9a8245ae3381p-01 ovh=0x1.5c76666666666p+16 ctl=3188 ctldrop=37 lt=0x1.596850f12a21fp+17 hops=0x1.47841982470f8p+02 csi=0x1.32957b6d36ebap+03 hopsall=0x1.19d15c822d9d1p+02 csiall=0x1.07896cd3b02c8p+03 maxhops=8 p50=214844403 p99=2106303088 max=2307884272 goodput=0x1.5133333333333p+18",
	"ABR/1":       "gen=1016 del=914 drop[congestion]=57 drop[no-route]=23 delay=373997011 ratio=0x1.cc993264c9932p-01 ovh=0x1.b486666666666p+15 ctl=1906 ctldrop=1 lt=0x1.1475beca88c5dp+17 hops=0x1.038047b3d0f2p+02 csi=0x1.490fd77cf6bf4p+03 hopsall=0x1.e84e4b34062e6p+01 csiall=0x1.354f03cfc99b8p+03 maxhops=7 p50=265816370 p99=1340439336 max=2444044337 goodput=0x1.6d9999999999ap+18",
	"ABR/2":       "gen=1023 del=818 drop[congestion]=31 drop[no-route]=147 delay=274507502 ratio=0x1.9966599665996p-01 ovh=0x1.c4ccccccccccdp+15 ctl=2365 ctldrop=5 lt=0x1.320638adfe4e2p+17 hops=0x1.a9778cd4cfcdfp+01 csi=0x1.d5d3c904fb785p+02 hopsall=0x1.5fbe3367d6e02p+01 csiall=0x1.87005ec03745dp+02 maxhops=6 p50=163840000 p99=2158435811 max=2242708695 goodput=0x1.4733333333333p+18",
	"ABR/3":       "gen=1014 del=884 drop[congestion]=69 drop[no-route]=23 delay=456686346 ratio=0x1.be5be5be5be5cp-01 ovh=0x1.aa2cccccccccdp+15 ctl=1755 ctldrop=0 lt=0x1.051d97127f4f1p+17 hops=0x1.198e7ac98e7adp+02 csi=0x1.6a3356c90023dp+03 hopsall=0x1.0779b47582193p+02 csiall=0x1.52285f59795ecp+03 maxhops=8 p50=385802976 p99=1529206998 max=1754312103 goodput=0x1.619999999999ap+18",
	"LinkState/1": "gen=1016 del=785 drop[congestion]=123 drop[link-break]=78 delay=208384288 ratio=0x1.8b972e5cb972ep-01 ovh=0x1.b0f4p+19 ctl=12014 ctldrop=2141 lt=0x1.729b28b66450cp+17 hops=0x1.00537c3feb20fp+02 csi=0x1.adbb916f2079p+02 hopsall=0x1.f0ae79825632ep+01 csiall=0x1.a11a7b9611a8ap+02 maxhops=28 p50=125610666 p99=1550304211 max=2523766571 goodput=0x1.3ap+18",
	"LinkState/2": "gen=1023 del=938 drop[congestion]=21 drop[link-break]=32 delay=153800992 ratio=0x1.d5755d5755d57p-01 ovh=0x1.a2f399999999ap+19 ctl=11171 ctldrop=2148 lt=0x1.6eee1d167d3d4p+17 hops=0x1.036958f8e76fep+02 csi=0x1.b05f8b521dd4ap+02 hopsall=0x1.f5ece24aea0aep+01 csiall=0x1.a38a2999c3edfp+02 maxhops=27 p50=101043183 p99=808836169 max=1244543386 goodput=0x1.7733333333333p+18",
	"LinkState/3": "gen=1014 del=928 drop[congestion]=17 drop[link-break]=29 delay=233634023 ratio=0x1.d49370997fbf6p-01 ovh=0x1.c9e0ccccccccdp+19 ctl=12434 ctldrop=1985 lt=0x1.723c07269d518p+17 hops=0x1.28469ee58469fp+02 csi=0x1.f2f786884c472p+02 hopsall=0x1.1fcd8932fd5f2p+02 csiall=0x1.e56a14655943fp+02 maxhops=35 p50=149081864 p99=1251172725 max=1653589015 goodput=0x1.7333333333333p+18",
}

// fingerprint is rica.Fingerprint: an exact, platform-independent
// rendering (integers verbatim, floats in hex notation so equality means
// bit-equality, durations in nanoseconds). The recorded goldens above
// are outputs of that public format.
func fingerprint(s rica.Summary) string { return rica.Fingerprint(s) }

func goldenRun(p rica.Protocol, seed int64) rica.Summary {
	return rica.Simulate(rica.SimConfig{
		Protocol:     p,
		MeanSpeedKmh: 36,
		Rate:         10,
		Duration:     goldenDuration,
		Seed:         seed,
	})
}

// TestGoldenBitIdentical checks every protocol at three seeds against the
// recorded pre-refactor fingerprints. Any mismatch means the simulation's
// event sequence changed — for a pure performance refactor that is a bug.
func TestGoldenBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("15 × 10 s simulations")
	}
	t.Parallel()
	for _, p := range rica.AllProtocols() {
		for seed := int64(1); seed <= 3; seed++ {
			p, seed := p, seed
			name := fmt.Sprintf("%s/%d", p, seed)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				want, ok := golden[name]
				if !ok {
					t.Fatalf("no golden fingerprint recorded for %s", name)
				}
				if got := fingerprint(goldenRun(p, seed)); got != want {
					t.Errorf("summary diverged from pre-refactor golden\n got: %s\nwant: %s", got, want)
				}
			})
		}
	}
}

// TestGoldenGenerate prints the current fingerprint table in the format
// of the golden map, for regeneration after an intentional behaviour
// change: go test -run TestGoldenGenerate -v
func TestGoldenGenerate(t *testing.T) {
	if !testing.Verbose() || testing.Short() {
		t.Skip("generator; run with -v")
	}
	for _, p := range rica.AllProtocols() {
		for seed := int64(1); seed <= 3; seed++ {
			fmt.Printf("GOLDEN\t%s/%d\t%s\n", p, seed, fingerprint(goldenRun(p, seed)))
		}
	}
}
