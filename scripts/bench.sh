#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# emit a fixed-schema JSON record, so BENCH_<n>.json files accumulate a
# comparable perf trajectory across PRs.
#
# Usage:
#   scripts/bench.sh [-bench REGEX] [-benchtime SPEC] [-count N] [-label TEXT] [-out FILE]
#                    [-cpuprofile FILE] [-scaling]
#   scripts/bench.sh -diff BASELINE.json POST.json
#
# Defaults run the figure-scale suite plus the throughput benchmark a few
# times and print the JSON to stdout. The schema per benchmark:
#
#   {"name": ..., "ns_per_op": ..., "bytes_per_op": ..., "allocs_per_op": ...,
#    "events_per_sec": ...}          # events_per_sec only where reported
#
# wrapped as:
#
#   {"label": ..., "go": ..., "benchmarks": [...], "obs": {...}}
#
# The "obs" object is the observability counter snapshot of a fixed
# reference run (chain-10, 10 s, seed 1 — deterministic per toolchain),
# so BENCH_<n>.json also tracks the event/cache/drain counter profile
# across PRs, not just timings.
#
# Numbers are the per-benchmark MINIMUM across -count repetitions — the
# least-noise estimate on a shared machine.
#
# -scaling additionally runs the BenchmarkShardedThroughput core-scaling
# sweep (metro-500 at 1/2/4/8 spatial shards) and records it as a
# "scaling" array of {"shards", "ns_per_op", "events_per_sec"} objects,
# so BENCH_<n>.json tracks single-run multicore scaling alongside the
# serial trajectory. The sweep is opt-in: it simulates the densest
# catalog scenario four times and dominates wall time when enabled.
#
# -diff compares two such records (cmd/benchdiff) and prints the delta
# summary BENCH_<n>.json files embed, so perf PRs stop hand-computing
# ratios. -cpuprofile additionally runs ONE extra repetition of the
# root-package benchmarks with the CPU profiler on, writing FILE (and
# FILE.test, the binary to feed `go tool pprof`), so the next perf PR
# starts from a captured profile instead of guesswork.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH='BenchmarkSimulationThroughput|BenchmarkInstrumentedThroughput|BenchmarkKernelScheduleAndRun|BenchmarkFigure2a'
BENCHTIME=5x
COUNT=3
LABEL=""
OUT=""
CPUPROFILE=""
SCALING=0

while [ $# -gt 0 ]; do
    case "$1" in
        -bench)      BENCH="$2"; shift 2 ;;
        -benchtime)  BENCHTIME="$2"; shift 2 ;;
        -count)      COUNT="$2"; shift 2 ;;
        -label)      LABEL="$2"; shift 2 ;;
        -out)        OUT="$2"; shift 2 ;;
        -cpuprofile) CPUPROFILE="$2"; shift 2 ;;
        -scaling)    SCALING=1; shift ;;
        -diff)
            [ $# -eq 3 ] || { echo "bench.sh: -diff needs BASELINE.json POST.json" >&2; exit 2; }
            exec go run ./cmd/benchdiff "$2" "$3"
            ;;
        *) echo "bench.sh: unknown flag $1" >&2; exit 2 ;;
    esac
done

RAW=$(go test -run 'ZZnone' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" ./... 2>/dev/null | grep -E '^Benchmark')

if [ -n "$CPUPROFILE" ]; then
    # Profiling pass: root package only (go test writes one profile per
    # package, and the figure/throughput benchmarks live at the root).
    go test -run 'ZZnone' -bench "$BENCH" -benchtime "$BENCHTIME" -count 1 \
        -cpuprofile "$CPUPROFILE" -o "$CPUPROFILE.test" . >/dev/null 2>&1
    echo "wrote $CPUPROFILE (binary: $CPUPROFILE.test)" >&2
fi

JSON=$(printf '%s\n' "$RAW" | awk -v label="$LABEL" -v goversion="$(go env GOVERSION)" '
{
    # Strip the -N GOMAXPROCS suffix from the name.
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; evps = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")      ns = $i
        if ($(i+1) == "B/op")       bytes = $i
        if ($(i+1) == "allocs/op")  allocs = $i
        if ($(i+1) == "events/sec") evps = $i
    }
    if (ns == "") next
    if (!(name in min_ns)) {
        order[++n] = name
        min_ns[name] = ns; min_bytes[name] = bytes; min_allocs[name] = allocs
    } else if (ns + 0 < min_ns[name] + 0) {
        min_ns[name] = ns; min_bytes[name] = bytes; min_allocs[name] = allocs
    }
    # events/sec is a rate: keep the MAX (best) observation.
    if (evps != "" && (!(name in max_ev) || evps + 0 > max_ev[name] + 0)) max_ev[name] = evps
}
END {
    printf "{\"label\": \"%s\", \"go\": \"%s\", \"benchmarks\": [", label, goversion
    first = 1
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!first) printf ", "
        first = 0
        printf "{\"name\": \"%s\", \"ns_per_op\": %s", name, min_ns[name]
        if (min_bytes[name]  != "") printf ", \"bytes_per_op\": %s", min_bytes[name]
        if (min_allocs[name] != "") printf ", \"allocs_per_op\": %s", min_allocs[name]
        if (name in max_ev)         printf ", \"events_per_sec\": %s", max_ev[name]
        printf "}"
    }
    print "]}"
}')

if [ "$SCALING" = 1 ]; then
    SRAW=$(go test -run 'ZZnone' -bench '^BenchmarkShardedThroughput$' -benchmem -benchtime 1x -count 1 . 2>/dev/null \
        | grep -E '^BenchmarkShardedThroughput/')
    SCAL=$(printf '%s\n' "$SRAW" | awk '
    {
        split($1, parts, "/")
        sub(/^shards-/, "", parts[2])
        split(parts[2], nums, "-") # drop any GOMAXPROCS suffix
        shards = nums[1]
        ns = ""; evps = ""
        for (i = 2; i < NF; i++) {
            if ($(i+1) == "ns/op")      ns = $i
            if ($(i+1) == "events/sec") evps = $i
        }
        if (ns == "") next
        if (!first) first = 1; else printf ", "
        printf "{\"shards\": %s, \"ns_per_op\": %s", shards, ns
        if (evps != "") printf ", \"events_per_sec\": %s", evps
        printf "}"
    }')
    JSON="${JSON%\}}, \"scaling\": [${SCAL}]}"
fi

# Counter snapshot of the fixed reference run, folded into the record.
# The snapshot is per-cell deterministic; the process-wide pool and
# shard-pool stats it carries (gets/releases/high-water, barrier stall
# wall time) vary with the run, so strip those objects.
OBS_TMP=$(mktemp)
trap 'rm -f "$OBS_TMP"' EXIT
go run ./cmd/ricasim -scenario chain-10 -protocols RICA -trials 1 -duration 10s \
    -obs "$OBS_TMP" >/dev/null 2>&1
OBS=$(awk '
    /"(pool|shard)": \{/ { inpool = 1; next }
    inpool { if (/\}/) inpool = 0; next }
    { lines[++n] = $0 }
    END {
        sub(/,[[:space:]]*$/, "", lines[n-1]) # comma left dangling by the cut
        for (i = 1; i <= n; i++) print lines[i]
    }' "$OBS_TMP")
JSON="${JSON%\}}, \"obs\": ${OBS}}"

if [ -n "$OUT" ]; then
    printf '%s\n' "$JSON" > "$OUT"
    echo "wrote $OUT" >&2
else
    printf '%s\n' "$JSON"
fi
