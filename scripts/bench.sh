#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# emit a fixed-schema JSON record, so BENCH_<n>.json files accumulate a
# comparable perf trajectory across PRs.
#
# Usage:
#   scripts/bench.sh [-bench REGEX] [-benchtime SPEC] [-count N] [-label TEXT] [-out FILE]
#                    [-cpuprofile FILE]
#   scripts/bench.sh -diff BASELINE.json POST.json
#
# Defaults run the figure-scale suite plus the throughput benchmark a few
# times and print the JSON to stdout. The schema per benchmark:
#
#   {"name": ..., "ns_per_op": ..., "bytes_per_op": ..., "allocs_per_op": ...,
#    "events_per_sec": ...}          # events_per_sec only where reported
#
# wrapped as:
#
#   {"label": ..., "go": ..., "benchmarks": [...]}
#
# Numbers are the per-benchmark MINIMUM across -count repetitions — the
# least-noise estimate on a shared machine.
#
# -diff compares two such records (cmd/benchdiff) and prints the delta
# summary BENCH_<n>.json files embed, so perf PRs stop hand-computing
# ratios. -cpuprofile additionally runs ONE extra repetition of the
# root-package benchmarks with the CPU profiler on, writing FILE (and
# FILE.test, the binary to feed `go tool pprof`), so the next perf PR
# starts from a captured profile instead of guesswork.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH='BenchmarkSimulationThroughput|BenchmarkKernelScheduleAndRun|BenchmarkFigure2a'
BENCHTIME=5x
COUNT=3
LABEL=""
OUT=""
CPUPROFILE=""

while [ $# -gt 0 ]; do
    case "$1" in
        -bench)      BENCH="$2"; shift 2 ;;
        -benchtime)  BENCHTIME="$2"; shift 2 ;;
        -count)      COUNT="$2"; shift 2 ;;
        -label)      LABEL="$2"; shift 2 ;;
        -out)        OUT="$2"; shift 2 ;;
        -cpuprofile) CPUPROFILE="$2"; shift 2 ;;
        -diff)
            [ $# -eq 3 ] || { echo "bench.sh: -diff needs BASELINE.json POST.json" >&2; exit 2; }
            exec go run ./cmd/benchdiff "$2" "$3"
            ;;
        *) echo "bench.sh: unknown flag $1" >&2; exit 2 ;;
    esac
done

RAW=$(go test -run 'ZZnone' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" ./... 2>/dev/null | grep -E '^Benchmark')

if [ -n "$CPUPROFILE" ]; then
    # Profiling pass: root package only (go test writes one profile per
    # package, and the figure/throughput benchmarks live at the root).
    go test -run 'ZZnone' -bench "$BENCH" -benchtime "$BENCHTIME" -count 1 \
        -cpuprofile "$CPUPROFILE" -o "$CPUPROFILE.test" . >/dev/null 2>&1
    echo "wrote $CPUPROFILE (binary: $CPUPROFILE.test)" >&2
fi

JSON=$(printf '%s\n' "$RAW" | awk -v label="$LABEL" -v goversion="$(go env GOVERSION)" '
{
    # Strip the -N GOMAXPROCS suffix from the name.
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; evps = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")      ns = $i
        if ($(i+1) == "B/op")       bytes = $i
        if ($(i+1) == "allocs/op")  allocs = $i
        if ($(i+1) == "events/sec") evps = $i
    }
    if (ns == "") next
    if (!(name in min_ns)) {
        order[++n] = name
        min_ns[name] = ns; min_bytes[name] = bytes; min_allocs[name] = allocs
    } else if (ns + 0 < min_ns[name] + 0) {
        min_ns[name] = ns; min_bytes[name] = bytes; min_allocs[name] = allocs
    }
    # events/sec is a rate: keep the MAX (best) observation.
    if (evps != "" && (!(name in max_ev) || evps + 0 > max_ev[name] + 0)) max_ev[name] = evps
}
END {
    printf "{\"label\": \"%s\", \"go\": \"%s\", \"benchmarks\": [", label, goversion
    first = 1
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!first) printf ", "
        first = 0
        printf "{\"name\": \"%s\", \"ns_per_op\": %s", name, min_ns[name]
        if (min_bytes[name]  != "") printf ", \"bytes_per_op\": %s", min_bytes[name]
        if (min_allocs[name] != "") printf ", \"allocs_per_op\": %s", min_allocs[name]
        if (name in max_ev)         printf ", \"events_per_sec\": %s", max_ev[name]
        printf "}"
    }
    print "]}"
}')

if [ -n "$OUT" ]; then
    printf '%s\n' "$JSON" > "$OUT"
    echo "wrote $OUT" >&2
else
    printf '%s\n' "$JSON"
fi
