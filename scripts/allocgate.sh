#!/usr/bin/env bash
# allocgate.sh — the allocation-regression gate for CI.
#
# Runs BenchmarkSimulationThroughput with -benchmem and fails if allocs/op
# exceeds the committed budget in scripts/alloc_budget.txt. Allocation
# counts are nearly deterministic (unlike ns/op, which CI boxes are far too
# noisy to assert on), so this catches "someone reintroduced a per-event
# allocation" without flaky timing thresholds.
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET=$(grep -v '^#' scripts/alloc_budget.txt | head -1 | tr -d '[:space:]')
if ! [[ "$BUDGET" =~ ^[0-9]+$ ]]; then
    echo "allocgate: bad budget in scripts/alloc_budget.txt: '$BUDGET'" >&2
    exit 2
fi

OUT=$(go test -run 'ZZnone' -bench 'BenchmarkSimulationThroughput$' -benchmem -benchtime 2x . 2>&1 | grep -E '^BenchmarkSimulationThroughput' || true)
if [ -z "$OUT" ]; then
    echo "allocgate: benchmark produced no output" >&2
    exit 2
fi
echo "$OUT"

ALLOCS=$(echo "$OUT" | awk '{for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $i}' | head -1)
if ! [[ "$ALLOCS" =~ ^[0-9]+$ ]]; then
    echo "allocgate: could not parse allocs/op from benchmark output" >&2
    exit 2
fi

if [ "$ALLOCS" -gt "$BUDGET" ]; then
    echo "allocgate: FAIL — $ALLOCS allocs/op exceeds the budget of $BUDGET" >&2
    echo "allocgate: if the increase is intentional, raise scripts/alloc_budget.txt in the same PR and say why" >&2
    exit 1
fi
echo "allocgate: OK — $ALLOCS allocs/op within budget $BUDGET"
