#!/usr/bin/env bash
# allocgate.sh — the allocation-regression gate for CI.
#
# Runs every benchmark listed in scripts/alloc_budget.txt with -benchmem
# and fails if its allocs/op exceeds the committed budget. Allocation
# counts are nearly deterministic (unlike ns/op, which CI boxes are far
# too noisy to assert on), so this catches "someone reintroduced a
# per-event allocation" without flaky timing thresholds.
#
# Budget file format: one "BenchmarkName BUDGET" pair per line; blank
# lines and #-comments ignored.
set -euo pipefail
cd "$(dirname "$0")/.."

FAILED=0
while read -r NAME BUDGET; do
    case "$NAME" in ''|'#'*) continue ;; esac
    if ! [[ "$BUDGET" =~ ^[0-9]+$ ]]; then
        echo "allocgate: bad budget for $NAME in scripts/alloc_budget.txt: '$BUDGET'" >&2
        exit 2
    fi

    OUT=$(go test -run 'ZZnone' -bench "^${NAME}\$" -benchmem -benchtime 2x ./... 2>&1 | grep -E "^${NAME}\b" || true)
    if [ -z "$OUT" ]; then
        echo "allocgate: benchmark $NAME produced no output" >&2
        exit 2
    fi
    echo "$OUT"

    ALLOCS=$(echo "$OUT" | awk '{for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $i}' | head -1)
    if ! [[ "$ALLOCS" =~ ^[0-9]+$ ]]; then
        echo "allocgate: could not parse allocs/op for $NAME" >&2
        exit 2
    fi

    if [ "$ALLOCS" -gt "$BUDGET" ]; then
        echo "allocgate: FAIL — $NAME: $ALLOCS allocs/op exceeds the budget of $BUDGET" >&2
        echo "allocgate: if the increase is intentional, raise scripts/alloc_budget.txt in the same PR and say why" >&2
        FAILED=1
    else
        echo "allocgate: OK — $NAME: $ALLOCS allocs/op within budget $BUDGET"
    fi
done < scripts/alloc_budget.txt

exit "$FAILED"
