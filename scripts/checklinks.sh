#!/usr/bin/env bash
# checklinks.sh — fail on broken relative links in the repo's markdown.
#
# Scans README.md, DESIGN.md, docs/*.md and examples/README.md for
# markdown links, skips absolute URLs and pure in-page anchors, and
# verifies every relative target exists on disk (resolved against the
# linking file's directory). Run from the repository root; CI's docs job
# runs it on every push.
set -euo pipefail

cd "$(dirname "$0")/.."

files=(README.md DESIGN.md)
for f in docs/*.md examples/README.md; do
  [ -e "$f" ] && files+=("$f")
done

fail=0
for f in "${files[@]}"; do
  dir=$(dirname "$f")
  # Extract every markdown link target: [text](target)
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"      # drop in-page anchors
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $f -> $target"
      fail=1
    fi
  done < <(grep -o '\](\([^)]*\))' "$f" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "broken relative links found" >&2
  exit 1
fi
echo "all relative links resolve"
