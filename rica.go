// Package rica is a from-scratch reproduction of "RICA: A
// Receiver-Initiated Approach for Channel-Adaptive On-Demand Routing in Ad
// Hoc Mobile Computing Networks" (Lin, Kwok, Lau — ICDCS 2002).
//
// It bundles a deterministic discrete-event wireless network simulator —
// random-waypoint mobility, a four-class fading channel with CSI hop
// distances (neighbourhoods answered from a spatial grid, so dense
// fields stay fast), a CSMA/CA common channel plus CDMA data planes, and
// store-and-forward terminals — together with five routing protocols
// (RICA, BGCA, AODV, ABR, link state), the experiment harness that
// regenerates every figure of the paper's evaluation, a declarative
// scenario catalog with a parallel batch engine, and per-interval
// telemetry timelines for observing transients (route convergence,
// failure/heal recovery) that end-of-run aggregates hide.
//
// Quick start:
//
//	summary := rica.Simulate(rica.SimConfig{
//		Protocol:     rica.ProtocolRICA,
//		MeanSpeedKmh: 36,
//		Rate:         10,
//		Duration:     60 * time.Second,
//		Seed:         1,
//	})
//	fmt.Printf("delivered %.1f%% with mean delay %v\n",
//		summary.DeliveryRatio*100, summary.AvgDelay)
//
// Figures:
//
//	sweep := rica.Sweep(10, rica.Options{Trials: 5})
//	fmt.Print(sweep.Table(rica.MetricDelay)) // Figure 2(a)
//
// Timelines:
//
//	summary, tl := rica.SimulateTimeline(rica.SimConfig{
//		Protocol: rica.ProtocolRICA, MeanSpeedKmh: 36, Rate: 10,
//		Duration: 60 * time.Second,
//		Telemetry: &rica.Telemetry{Interval: time.Second},
//	})
//	for _, p := range tl.Points {
//		fmt.Printf("t=%gs delivery=%.0f%%\n", p.StartS, p.DeliveryRatio*100)
//	}
package rica

import (
	"io"
	"os"
	"time"

	"rica/internal/batch"
	"rica/internal/experiment"
	"rica/internal/invariant"
	"rica/internal/metrics"
	"rica/internal/obs"
	"rica/internal/packet"
	"rica/internal/scenario"
	"rica/internal/sim"
	"rica/internal/timeseries"
	"rica/internal/trace"
	"rica/internal/traffic"
	"rica/internal/world"
)

// Protocol selects one of the five compared routing protocols.
type Protocol = experiment.Protocol

// The five protocols of the paper's comparison.
const (
	ProtocolRICA      = experiment.RICA
	ProtocolBGCA      = experiment.BGCA
	ProtocolAODV      = experiment.AODV
	ProtocolABR       = experiment.ABR
	ProtocolLinkState = experiment.LinkState
)

// AllProtocols lists the comparison set in plotting order.
func AllProtocols() []Protocol { return experiment.AllProtocols() }

// ParseProtocol resolves a protocol name ("RICA", "AODV", ...).
func ParseProtocol(name string) (Protocol, error) { return experiment.ParseProtocol(name) }

// Summary is one simulation run's aggregated measurements.
type Summary = metrics.Summary

// Flow is one unidirectional Poisson data stream between two terminals.
type Flow = traffic.Flow

// SimConfig describes a single simulation run.
type SimConfig struct {
	// Protocol is the routing protocol under test.
	Protocol Protocol
	// MeanSpeedKmh is the mean terminal speed in km/h; terminals draw
	// per-leg speeds uniformly from [0, 2×mean] (the paper's MAXSPEED).
	MeanSpeedKmh float64
	// Rate is the per-flow offered load in packets/second.
	Rate float64
	// Duration is the simulated horizon. Zero means the paper's 500 s.
	Duration time.Duration
	// Seed selects the random universe; equal seeds reproduce bit-equal
	// runs. The zero value is a sentinel meaning "the library default"
	// (seed 1), so an omitted Seed stays reproducible; to run the actual
	// seed 0, set SeedZero.
	Seed int64
	// SeedZero forces the run onto seed 0, which the Seed field's zero
	// sentinel cannot express on its own. Ignored when Seed is nonzero.
	SeedZero bool
	// Flows optionally pins the workload; nil draws 10 disjoint random
	// pairs (the paper's setup).
	Flows []Flow
	// BufferCap overrides the per-link data buffer capacity (paper: 10);
	// zero keeps the default.
	BufferCap int
	// Telemetry, when non-nil, collects an interval-bucketed timeline
	// during the run. Retrieve it with SimulateTimeline, or set
	// Telemetry.Sink to stream it; plain Simulate discards an unsunk
	// timeline.
	Telemetry *Telemetry
	// Obs, when non-nil, is the observability registry the run counts
	// into. Its atomic counters may be read concurrently while the run
	// executes (live heartbeats, the HTTP stats endpoint); attaching one
	// never changes simulation results. When nil the world creates a
	// private registry and the end-of-run snapshot still lands on
	// Summary.Obs.
	Obs *ObsRegistry
	// Shards, when ≥ 2, spreads the run's broadcast geometry scans across
	// that many spatial shards on a worker pool (clamped to the terminal
	// count); 0 or 1 keeps the run fully serial. The Summary is
	// bit-identical for every value — sharding trades wall-clock time
	// only, never results (see DESIGN.md §10). This parallelizes inside
	// one run; BatchConfig.Workers parallelizes across runs.
	Shards int
	// CheckpointPath, when set, is the snapshot file the run writes at
	// every CheckpointEvery of virtual time, atomically, so a killed
	// process can be resumed via Resume. Honoured by
	// SimulateCheckpointed (plain Simulate ignores it, as it has no way
	// to surface a snapshot write error). See docs/OPERATIONS.md.
	CheckpointPath string
	// CheckpointEvery is the virtual-time snapshot cadence; zero means
	// every 10 simulated seconds.
	CheckpointEvery time.Duration
}

// Telemetry configures per-interval timeline collection for one run.
type Telemetry struct {
	// Interval is the bucket width; zero means one second.
	Interval time.Duration
	// Sink, when non-nil, receives the finished timeline after the run
	// (stamped with the protocol and effective seed).
	Sink TimelineSink
	// Streaming switches delay percentiles to the bounded-memory
	// histogram path: constant memory per interval instead of one sample
	// per delivery, at ~3 % relative quantile error (see
	// docs/OBSERVABILITY.md). Off by default; the exact path remains the
	// golden oracle.
	Streaming bool
}

// Simulate runs one simulation and returns its measurements.
func Simulate(cfg SimConfig) Summary {
	s, _, _ := simulate(cfg, nil)
	return s
}

// Timeline types: a Timeline is one run's interval series of
// TimelinePoints; a TimelineSink consumes finished timelines stamped
// with their TimelineRun coordinates.
type (
	Timeline      = timeseries.Timeline
	TimelinePoint = timeseries.Point
	TimelineSink  = timeseries.Sink
	TimelineRun   = timeseries.Run
)

// MemoryTimelineSink retains emitted timelines in memory for
// programmatic access (see its Runs field).
type MemoryTimelineSink = timeseries.MemorySink

// NewJSONLTimelineSink returns a sink writing one JSON object per
// interval (JSON Lines) to w.
func NewJSONLTimelineSink(w io.Writer) TimelineSink { return timeseries.NewJSONLSink(w) }

// NewCSVTimelineSink returns a sink writing one CSV row per interval to
// w, with a header line first.
func NewCSVTimelineSink(w io.Writer) TimelineSink { return timeseries.NewCSVSink(w) }

// SimulateTimeline runs one simulation and returns its measurements plus
// the interval telemetry timeline. A nil cfg.Telemetry behaves like
// &Telemetry{}: one-second buckets, no sink.
func SimulateTimeline(cfg SimConfig) (Summary, Timeline) {
	if cfg.Telemetry == nil {
		cfg.Telemetry = &Telemetry{}
	}
	s, tl, _ := simulate(cfg, nil)
	return s, tl
}

// TraceEvent is one packet-level event from a traced run.
type TraceEvent = trace.Event

// Trace event kinds.
const (
	TraceGenerated   = trace.KindGenerated
	TraceDelivered   = trace.KindDelivered
	TraceDropped     = trace.KindDropped
	TraceControl     = trace.KindControl
	TraceControlLost = trace.KindControlLost
)

// SimulateTraced runs one simulation while recording its packet-level
// event history (the most recent capacity events; capacity 0 retains
// nothing), for debugging and demonstrations.
func SimulateTraced(cfg SimConfig, capacity int) (Summary, []TraceEvent) {
	rec := trace.NewRecorder(capacity)
	s, _, _ := simulate(cfg, rec)
	return s, rec.Events()
}

func simulate(cfg SimConfig, rec *trace.Recorder) (Summary, Timeline, *trace.Recorder) {
	wcfg := simWorldConfig(cfg)
	wcfg.Trace = rec
	summary := world.New(wcfg, experiment.Factory(cfg.Protocol, cfg.Rate)).Run()
	var tl Timeline
	if cfg.Telemetry != nil {
		tl = wcfg.Timeseries.Timeline()
		if cfg.Telemetry.Sink != nil {
			run := TimelineRun{Protocol: cfg.Protocol.String(), Seed: wcfg.Seed}
			// The sink's error has nowhere to surface from Simulate's
			// signature; sinks that can fail belong in batch runs, which
			// propagate it.
			_ = cfg.Telemetry.Sink.Emit(run, tl)
		}
	}
	return summary, tl, rec
}

// RunConfig describes one experimental cell (a protocol × speed × load
// point averaged over trials); Result carries its per-trial summaries and
// across-trial means.
type (
	RunConfig = experiment.RunConfig
	Result    = experiment.Result
	Averages  = experiment.Averages
)

// Run executes one experimental cell.
func Run(cfg RunConfig) Result { return experiment.Run(cfg) }

// Options sets the experiment grid (speeds, trials, duration, protocols);
// zero values default to the paper's full scale.
type Options = experiment.Options

// Metric selects a sweep projection: delay (Figure 2), delivery
// (Figure 3) or overhead (Figure 4).
type Metric = experiment.Metric

// Sweep projections.
const (
	MetricDelay    = experiment.MetricDelay
	MetricDelivery = experiment.MetricDelivery
	MetricOverhead = experiment.MetricOverhead
)

// SweepResult, QualityResult and SeriesResult are the figure data sets.
type (
	SweepResult   = experiment.SweepResult
	QualityResult = experiment.QualityResult
	SeriesResult  = experiment.SeriesResult
)

// Sweep runs the mobility sweep behind Figures 2, 3 and 4 at the given
// per-flow load (packets/s).
func Sweep(load float64, o Options) SweepResult { return experiment.Sweep(load, o) }

// Quality runs Figure 5's route-quality experiment.
func Quality(speedKmh, load float64, o Options) QualityResult {
	return experiment.Quality(speedKmh, load, o)
}

// Series runs Figure 6's aggregate-throughput time series.
func Series(load, speedKmh float64, o Options) SeriesResult {
	return experiment.Series(load, speedKmh, o)
}

// Figure6SpeedKmh is the mobility used for Figure 6 (the paper does not
// state one; low-to-moderate mobility matches its curves).
const Figure6SpeedKmh = 18.0

// Scenario is a declarative simulation description: topology, traffic
// pattern, node failure schedule, channel/buffer overrides, and horizon.
// Scenarios serialize to JSON and compile to full simulation configs; see
// ScenarioNames for the built-in catalog.
type Scenario = scenario.Spec

// ScenarioDuration is the JSON-friendly duration type scenario specs use
// ("90s" strings on the wire; convert with time.Duration casts in code).
type ScenarioDuration = scenario.Duration

// ScenarioNames lists the built-in scenario catalog, sorted.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName fetches a built-in scenario ("paper-baseline",
// "dense-urban", ...).
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// ParseScenario decodes and validates a JSON scenario spec.
func ParseScenario(data []byte) (Scenario, error) { return scenario.ParseJSON(data) }

// LoadScenario reads a scenario spec from a JSON file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	return scenario.ParseJSON(data)
}

// ScenarioRun pins one simulation of a compiled scenario: the spec, the
// protocol under test, and the deterministic coordinates. It is the
// single-run analogue of a batch cell — SimulateScenario(r) and a
// 1×1×1 RunBatch cell execute the same configuration.
type ScenarioRun struct {
	// Scenario is the validated spec to compile and run.
	Scenario Scenario
	// Protocol is the routing protocol under test.
	Protocol Protocol
	// Seed overrides the scenario's compiled seed when nonzero.
	Seed int64
	// Shards, when ≥ 2, enables the sharded engine exactly as
	// SimConfig.Shards does; results stay bit-identical.
	Shards int
	// MaxDuration, when positive, truncates the scenario's horizon — the
	// fuzzer and the invariant sweep run long catalog entries at short
	// horizons without editing the specs.
	MaxDuration time.Duration
}

// config compiles the run into a world configuration.
func (r ScenarioRun) config() (world.Config, error) {
	wcfg, err := r.Scenario.Compile()
	if err != nil {
		return world.Config{}, err
	}
	if r.Seed != 0 {
		wcfg.Seed = r.Seed
	}
	if r.MaxDuration > 0 && r.MaxDuration < wcfg.Duration {
		wcfg.Duration = r.MaxDuration
	}
	wcfg.Shards = r.Shards
	return wcfg, nil
}

// SimulateScenario compiles and executes one scenario run.
func SimulateScenario(r ScenarioRun) (Summary, error) {
	wcfg, err := r.config()
	if err != nil {
		return Summary{}, err
	}
	return world.New(wcfg, experiment.Factory(r.Protocol, r.Scenario.Traffic.Rate)).Run(), nil
}

// VerifyScenario executes the run under the full invariant harness: the
// simulation runs twice and must satisfy packet conservation and the
// ledger checks (CheckInvariants) on both passes, replay to a
// bit-identical fingerprint, and return every pooled packet. The first
// pass's summary is returned. Serial-use only — the leak check reads the
// process-global packet pool, so concurrent simulations (including
// t.Parallel tests) poison its baseline.
func VerifyScenario(r ScenarioRun) (Summary, error) {
	wcfg, err := r.config()
	if err != nil {
		return Summary{}, err
	}
	return invariant.Verify(func() Summary {
		cfg := wcfg // runs must not share mutable state
		return world.New(cfg, experiment.Factory(r.Protocol, r.Scenario.Traffic.Rate)).Run()
	})
}

// CheckInvariants validates a completed run's conservation laws: every
// generated packet is delivered, dropped for a recorded reason, or
// counted in flight at the horizon; independently maintained ledgers
// (delay histogram, traffic counters, adversary drops, kernel event
// counts) agree; the delivery ratio is consistent. A nil error means the
// summary is self-consistent. Works on any Summary — serial or sharded,
// Simulate or batch cell.
func CheckInvariants(s Summary) error { return invariant.CheckSummary(s) }

// Fingerprint renders a Summary into an exact, platform-independent
// string (integers verbatim, floats in hex so equality means
// bit-equality). Two runs of the same configuration must produce equal
// fingerprints; the golden regression tests pin recorded outputs of this
// exact format.
func Fingerprint(s Summary) string { return invariant.Fingerprint(s) }

// CheckTimelineInvariants validates a finished interval timeline's
// monotonicity laws: every cumulative counter (generated, delivered,
// drops by reason, control traffic, route churn) is non-decreasing over
// the run — per-interval deltas never go negative — and the cumulative
// books balance at every interval boundary (delivered + dropped never
// exceeds generated at any prefix, not just at the horizon). A nil
// error means the timeline is self-consistent. The invariant catalog
// sweep holds every built-in scenario × protocol cell to these laws.
func CheckTimelineInvariants(tl Timeline) error { return invariant.CheckTimeline(tl) }

// Batch types: BatchConfig spans a scenario × protocol × seed grid,
// BatchResult carries per-cell rows plus mean/p50/p95 aggregates (with
// JSON/CSV export), and BatchProgress streams per-cell completions.
type (
	BatchConfig    = batch.Config
	BatchResult    = batch.Result
	BatchCell      = batch.CellResult
	BatchAggregate = batch.Aggregate
	BatchProgress  = batch.Progress
)

// BatchTelemetry enables per-cell timeline collection in a batch: set
// BatchConfig.Telemetry and every scenario×protocol×seed cell emits an
// interval timeline to the sink, in grid order.
type BatchTelemetry = batch.Telemetry

// RunBatch expands the grid and executes it across a worker pool sized by
// BatchConfig.Workers (default: GOMAXPROCS). Cells run deterministic
// seeds and results are assembled in grid order, so the same scenarios
// and base seed produce bit-identical exports regardless of parallelism.
// Crash resilience: a panicking or stalling cell is quarantined (see
// BatchCell.Error) instead of killing the grid, BatchConfig.Manifest
// journals finished cells durably for resume, and BatchConfig.Stop ends
// the grid gracefully with ErrBatchInterrupted.
func RunBatch(cfg BatchConfig) (BatchResult, error) { return batch.Run(cfg) }

// ErrBatchInterrupted is wrapped by RunBatch's error when
// BatchConfig.Stop ended the grid before every cell ran; the partial
// result's finished cells are journaled when BatchConfig.Manifest is
// set, so re-running the same grid resumes instead of restarting.
var ErrBatchInterrupted = batch.ErrInterrupted

// Observability types: an ObsRegistry holds one run's (or one batch
// cell's) subsystem counters and delay histogram; an ObsSnapshot is its
// deterministic export form (attached to Summary.Obs and BatchCell.Obs);
// an ObsHub aggregates registries across concurrent runs and serves the
// live JSON/Prometheus surfaces; ObsPoolStats is the process-global
// pooled-packet accounting.
type (
	ObsRegistry   = obs.Registry
	ObsSnapshot   = obs.Snapshot
	ObsHub        = obs.Hub
	ObsPoolStats  = obs.PoolStats
	ObsShardStats = obs.ShardStats
)

// NewObsRegistry builds an empty observability registry to pass as
// SimConfig.Obs (or BatchConfig.Hub attachment) when a caller wants to
// watch counters while a run executes.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsHub builds an empty hub. Attach registries (or set
// BatchConfig.Hub) and serve hub.Handler() for live stats over HTTP.
func NewObsHub() *ObsHub { return obs.NewHub() }

// PoolStats reports the process-global pooled-packet accounting: total
// gets and releases, packets currently live outside the pool, and the
// live high-water mark. Process-wide (parallel runs share one pool), so
// it belongs on live surfaces and process-level snapshots, never in
// per-cell deterministic exports. Wire it as ObsHub.PoolFunc.
func PoolStats() ObsPoolStats {
	gets, releases, live, high := packet.PoolStats()
	return ObsPoolStats{Gets: gets, Releases: releases, Live: live, HighWater: high}
}

// ShardStats reports the process-global sharded-engine accounting: total
// epoch-barrier fan-outs and the wall time callers spent stalled at the
// barrier after finishing their own shard. Wall time is scheduling
// noise, so like PoolStats this belongs on live surfaces only, never in
// per-cell deterministic exports (the deterministic per-run shard
// counters live in Summary.Obs). Wire it as ObsHub.ShardFunc.
func ShardStats() ObsShardStats { return sim.ShardStatsNow() }
