// Package rica is a from-scratch reproduction of "RICA: A
// Receiver-Initiated Approach for Channel-Adaptive On-Demand Routing in Ad
// Hoc Mobile Computing Networks" (Lin, Kwok, Lau — ICDCS 2002).
//
// It bundles a deterministic discrete-event wireless network simulator —
// random-waypoint mobility, a four-class fading channel with CSI hop
// distances, a CSMA/CA common channel plus CDMA data planes, and
// store-and-forward terminals — together with five routing protocols
// (RICA, BGCA, AODV, ABR, link state) and the experiment harness that
// regenerates every figure of the paper's evaluation.
//
// Quick start:
//
//	summary := rica.Simulate(rica.SimConfig{
//		Protocol:     rica.ProtocolRICA,
//		MeanSpeedKmh: 36,
//		Rate:         10,
//		Duration:     60 * time.Second,
//		Seed:         1,
//	})
//	fmt.Printf("delivered %.1f%% with mean delay %v\n",
//		summary.DeliveryRatio*100, summary.AvgDelay)
//
// Figures:
//
//	sweep := rica.Sweep(10, rica.Options{Trials: 5})
//	fmt.Print(sweep.Table(rica.MetricDelay)) // Figure 2(a)
package rica

import (
	"os"
	"time"

	"rica/internal/batch"
	"rica/internal/experiment"
	"rica/internal/metrics"
	"rica/internal/scenario"
	"rica/internal/trace"
	"rica/internal/traffic"
	"rica/internal/world"
)

// Protocol selects one of the five compared routing protocols.
type Protocol = experiment.Protocol

// The five protocols of the paper's comparison.
const (
	ProtocolRICA      = experiment.RICA
	ProtocolBGCA      = experiment.BGCA
	ProtocolAODV      = experiment.AODV
	ProtocolABR       = experiment.ABR
	ProtocolLinkState = experiment.LinkState
)

// AllProtocols lists the comparison set in plotting order.
func AllProtocols() []Protocol { return experiment.AllProtocols() }

// ParseProtocol resolves a protocol name ("RICA", "AODV", ...).
func ParseProtocol(name string) (Protocol, error) { return experiment.ParseProtocol(name) }

// Summary is one simulation run's aggregated measurements.
type Summary = metrics.Summary

// Flow is one unidirectional Poisson data stream between two terminals.
type Flow = traffic.Flow

// SimConfig describes a single simulation run.
type SimConfig struct {
	// Protocol is the routing protocol under test.
	Protocol Protocol
	// MeanSpeedKmh is the mean terminal speed in km/h; terminals draw
	// per-leg speeds uniformly from [0, 2×mean] (the paper's MAXSPEED).
	MeanSpeedKmh float64
	// Rate is the per-flow offered load in packets/second.
	Rate float64
	// Duration is the simulated horizon. Zero means the paper's 500 s.
	Duration time.Duration
	// Seed selects the random universe; equal seeds reproduce bit-equal
	// runs. The zero value is a sentinel meaning "the library default"
	// (seed 1), so an omitted Seed stays reproducible; to run the actual
	// seed 0, set SeedZero.
	Seed int64
	// SeedZero forces the run onto seed 0, which the Seed field's zero
	// sentinel cannot express on its own. Ignored when Seed is nonzero.
	SeedZero bool
	// Flows optionally pins the workload; nil draws 10 disjoint random
	// pairs (the paper's setup).
	Flows []Flow
	// BufferCap overrides the per-link data buffer capacity (paper: 10);
	// zero keeps the default.
	BufferCap int
}

// Simulate runs one simulation and returns its measurements.
func Simulate(cfg SimConfig) Summary {
	s, _ := simulate(cfg, nil)
	return s
}

// TraceEvent is one packet-level event from a traced run.
type TraceEvent = trace.Event

// Trace event kinds.
const (
	TraceGenerated   = trace.KindGenerated
	TraceDelivered   = trace.KindDelivered
	TraceDropped     = trace.KindDropped
	TraceControl     = trace.KindControl
	TraceControlLost = trace.KindControlLost
)

// SimulateTraced runs one simulation while recording its packet-level
// event history (the most recent capacity events), for debugging and
// demonstrations.
func SimulateTraced(cfg SimConfig, capacity int) (Summary, []TraceEvent) {
	rec := trace.NewRecorder(capacity)
	s, _ := simulate(cfg, rec)
	return s, rec.Events()
}

func simulate(cfg SimConfig, rec *trace.Recorder) (Summary, *trace.Recorder) {
	wcfg := world.DefaultConfig(cfg.MeanSpeedKmh, cfg.Rate)
	if cfg.Duration > 0 {
		wcfg.Duration = cfg.Duration
	}
	if cfg.Seed != 0 || cfg.SeedZero {
		wcfg.Seed = cfg.Seed
	}
	if cfg.Flows != nil {
		wcfg.Flows = cfg.Flows
	}
	if cfg.BufferCap > 0 {
		wcfg.Node.BufferCap = cfg.BufferCap
	}
	wcfg.Trace = rec
	return world.New(wcfg, experiment.Factory(cfg.Protocol, cfg.Rate)).Run(), rec
}

// RunConfig describes one experimental cell (a protocol × speed × load
// point averaged over trials); Result carries its per-trial summaries and
// across-trial means.
type (
	RunConfig = experiment.RunConfig
	Result    = experiment.Result
	Averages  = experiment.Averages
)

// Run executes one experimental cell.
func Run(cfg RunConfig) Result { return experiment.Run(cfg) }

// Options sets the experiment grid (speeds, trials, duration, protocols);
// zero values default to the paper's full scale.
type Options = experiment.Options

// Metric selects a sweep projection: delay (Figure 2), delivery
// (Figure 3) or overhead (Figure 4).
type Metric = experiment.Metric

// Sweep projections.
const (
	MetricDelay    = experiment.MetricDelay
	MetricDelivery = experiment.MetricDelivery
	MetricOverhead = experiment.MetricOverhead
)

// SweepResult, QualityResult and SeriesResult are the figure data sets.
type (
	SweepResult   = experiment.SweepResult
	QualityResult = experiment.QualityResult
	SeriesResult  = experiment.SeriesResult
)

// Sweep runs the mobility sweep behind Figures 2, 3 and 4 at the given
// per-flow load (packets/s).
func Sweep(load float64, o Options) SweepResult { return experiment.Sweep(load, o) }

// Quality runs Figure 5's route-quality experiment.
func Quality(speedKmh, load float64, o Options) QualityResult {
	return experiment.Quality(speedKmh, load, o)
}

// Series runs Figure 6's aggregate-throughput time series.
func Series(load, speedKmh float64, o Options) SeriesResult {
	return experiment.Series(load, speedKmh, o)
}

// Figure6SpeedKmh is the mobility used for Figure 6 (the paper does not
// state one; low-to-moderate mobility matches its curves).
const Figure6SpeedKmh = 18.0

// Scenario is a declarative simulation description: topology, traffic
// pattern, node failure schedule, channel/buffer overrides, and horizon.
// Scenarios serialize to JSON and compile to full simulation configs; see
// ScenarioNames for the built-in catalog.
type Scenario = scenario.Spec

// ScenarioDuration is the JSON-friendly duration type scenario specs use
// ("90s" strings on the wire; convert with time.Duration casts in code).
type ScenarioDuration = scenario.Duration

// ScenarioNames lists the built-in scenario catalog, sorted.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName fetches a built-in scenario ("paper-baseline",
// "dense-urban", ...).
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// ParseScenario decodes and validates a JSON scenario spec.
func ParseScenario(data []byte) (Scenario, error) { return scenario.ParseJSON(data) }

// LoadScenario reads a scenario spec from a JSON file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	return scenario.ParseJSON(data)
}

// Batch types: BatchConfig spans a scenario × protocol × seed grid,
// BatchResult carries per-cell rows plus mean/p50/p95 aggregates (with
// JSON/CSV export), and BatchProgress streams per-cell completions.
type (
	BatchConfig    = batch.Config
	BatchResult    = batch.Result
	BatchCell      = batch.CellResult
	BatchAggregate = batch.Aggregate
	BatchProgress  = batch.Progress
)

// RunBatch expands the grid and executes it across a worker pool sized by
// BatchConfig.Workers (default: GOMAXPROCS). Cells run deterministic
// seeds and results are assembled in grid order, so the same scenarios
// and base seed produce bit-identical exports regardless of parallelism.
func RunBatch(cfg BatchConfig) (BatchResult, error) { return batch.Run(cfg) }
