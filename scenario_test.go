package rica_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rica"
)

// TestSeedZeroRepresentable: SimConfig can request the actual seed-0
// universe (SeedZero), which must be reproducible and distinct from the
// default universe the zero-valued Seed field falls back to.
func TestSeedZeroRepresentable(t *testing.T) {
	base := rica.SimConfig{
		Protocol: rica.ProtocolAODV, MeanSpeedKmh: 20, Rate: 10,
		Duration: 10 * time.Second,
	}
	zero := base
	zero.SeedZero = true
	a, b := rica.Simulate(zero), rica.Simulate(zero)
	if a.Generated != b.Generated || a.AvgDelay != b.AvgDelay {
		t.Fatal("seed-0 runs are not reproducible")
	}
	def := base // Seed omitted: the documented default universe (seed 1)
	d := rica.Simulate(def)
	if a.Generated == d.Generated && a.AvgDelay == d.AvgDelay && a.Delivered == d.Delivered {
		t.Error("seed 0 indistinguishable from the default seed — the sentinel still swallows it")
	}
	one := base
	one.Seed = 1
	e := rica.Simulate(one)
	if e.Generated != d.Generated || e.AvgDelay != d.AvgDelay {
		t.Error("omitted seed must keep meaning the default seed 1")
	}
}

// TestScenarioCatalogAPI: the public surface exposes the catalog and
// round-trips specs through JSON.
func TestScenarioCatalogAPI(t *testing.T) {
	names := rica.ScenarioNames()
	if len(names) < 8 {
		t.Fatalf("catalog has %d scenarios, want ≥ 8", len(names))
	}
	spec, err := rica.ScenarioByName("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := rica.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "paper-baseline" || back.Topology.N != 50 {
		t.Errorf("round trip mangled the spec: %+v", back)
	}
	if _, err := rica.ScenarioByName("no-such-scenario"); err == nil {
		t.Error("unknown scenario resolved")
	}
}

// TestRunBatchPublicAPI: a small grid runs through rica.RunBatch and
// exports well-formed JSON and CSV.
func TestRunBatchPublicAPI(t *testing.T) {
	spec, err := rica.ScenarioByName("chain-10")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = rica.ScenarioDuration(10 * time.Second)
	res, err := rica.RunBatch(rica.BatchConfig{
		Scenarios: []rica.Scenario{spec},
		Protocols: []rica.Protocol{rica.ProtocolRICA},
		Trials:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || len(res.Aggregates) != 1 {
		t.Fatalf("got %d cells, %d aggregates", len(res.Cells), len(res.Aggregates))
	}
	if res.Aggregates[0].DeliveryPct.Mean <= 0 {
		t.Error("chain-10 delivered nothing")
	}
	var js, csv bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"scenario": "chain-10"`) {
		t.Error("JSON export missing scenario rows")
	}
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 2 {
		t.Errorf("CSV has %d lines, want header + 1 aggregate", lines)
	}
}
