package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeChaosByteIdentical is the service's proof obligation: a grid
// whose worker is kill -9'd at a random moment mid-run must, after the
// supervisor heals it, export results byte-identical to an undisturbed
// run of the same grid. The supervisor restarts the worker, the worker
// resumes from its manifest journal with zero recompute, and the
// deterministic engine guarantees the recomputed tail matches — so the
// bytes must too.
func TestServeChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	bin := ricasimBinary(t)

	const (
		scenarioList = "dense-urban,jammer-grid"
		trials       = "3"
		durationS    = 6.0
	)

	// Undisturbed baseline, flag-for-flag what a serve worker runs.
	base := t.TempDir()
	baselinePath := filepath.Join(base, "baseline.json")
	cmd := exec.Command(bin,
		"-scenario", scenarioList, "-protocols", "RICA",
		"-trials", trials, "-seed", "1",
		"-manifest", filepath.Join(base, "manifest"),
		"-out", baselinePath, "-format", "json",
		"-stats", "1s", "-statsaddr", "127.0.0.1:0",
		"-duration", fmt.Sprintf("%gs", durationS))
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("baseline run: %v\n%s", err, out)
	}
	baseline, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}

	// The daemon, on an ephemeral port.
	daemon, baseURL := startServeDaemon(t, bin, t.TempDir())
	defer func() {
		_ = daemon.Process.Signal(syscall.SIGTERM)
		_, _ = daemon.Process.Wait()
	}()

	spec := fmt.Sprintf(`{"scenarios":["dense-urban","jammer-grid"],"protocols":["RICA"],"trials":%s,"seed":1,"duration_s":%g}`,
		trials, durationS)
	resp, err := http.Post(baseURL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	// Chaos: the moment the worker has journaled at least one cell,
	// kill -9 it. Repeat while restarts are cheap, then let it finish.
	type status struct {
		State     string `json:"state"`
		Reason    string `json:"reason"`
		Restarts  int    `json:"restarts"`
		Restored  int    `json:"restored"`
		DoneCells int    `json:"done_cells"`
		WorkerPID int    `json:"worker_pid"`
	}
	poll := func() status {
		var s status
		resp, err := http.Get(baseURL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		return s
	}

	kills := 0
	deadline := time.Now().Add(3 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("chaos run did not finish: %+v", poll())
		}
		s := poll()
		switch s.State {
		case "done":
			if kills == 0 {
				t.Fatal("grid finished before any worker was killed; grow the grid")
			}
			if s.Restarts < kills {
				t.Errorf("restarts=%d after %d kills", s.Restarts, kills)
			}
			result := fetchResult(t, baseURL, st.ID)
			if !bytes.Equal(result, baseline) {
				t.Fatalf("chaos export differs from undisturbed run: %d vs %d bytes", len(result), len(baseline))
			}
			t.Logf("byte-identical after %d kill -9s (restored %d cells on last resume)", kills, s.Restored)
			return
		case "failed", "canceled":
			t.Fatalf("job %s: %s", s.State, s.Reason)
		case "running":
			if kills < 2 && s.WorkerPID > 0 && s.DoneCells > kills {
				_ = syscall.Kill(s.WorkerPID, syscall.SIGKILL)
				kills++
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeOverloadReturns429 floods the daemon's queue and asserts
// admission control answers 429 + Retry-After while /healthz stays 200
// — overload must shed, never collapse.
func TestServeOverloadReturns429(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := ricasimBinary(t)
	daemon, baseURL := startServeDaemon(t, bin, t.TempDir(), "-max-queue", "2")
	defer func() {
		_ = daemon.Process.Signal(syscall.SIGTERM)
		_, _ = daemon.Process.Wait()
	}()

	spec := `{"scenarios":["dense-urban"],"protocols":["RICA"],"trials":3,"duration_s":30}`
	got429 := false
	for i := 0; i < 12 && !got429; i++ {
		resp, err := http.Post(baseURL+"/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: code %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !got429 {
		t.Fatal("queue flood never drew a 429")
	}
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under flood: %d", resp.StatusCode)
	}
}

var serveAddrRE = regexp.MustCompile(`control plane on (http://[^ ]+)`)

// startServeDaemon launches `ricasim serve` on an ephemeral port and
// returns the process and its base URL once the control plane is up.
func startServeDaemon(t *testing.T, bin, dataDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-data", dataDir}, extra...)
	daemon := exec.Command(bin, args...)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := serveAddrRE.FindStringSubmatch(line); m != nil {
				select {
				case urlc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case u := <-urlc:
		return daemon, u
	case <-time.After(30 * time.Second):
		_ = daemon.Process.Kill()
		t.Fatal("serve daemon never announced its address")
		return nil, ""
	}
}

func fetchResult(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
