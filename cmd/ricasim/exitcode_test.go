package main

import (
	"bufio"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestExitCodeContract pins the CLI's exit statuses end to end, as real
// subprocesses: 0 success, 1 error, 3 interrupted-but-resumable, 130
// forced by a second signal. Schedulers, the serve supervisor, and the
// CI crash-resume job all dispatch on these numbers, so they are API.
func TestExitCodeContract(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := ricasimBinary(t)

	cases := []struct {
		name string
		args func(dir string) []string
		// signals to deliver after evidence the run is underway; the
		// second (when present) waits for the drain banner first.
		signals  int
		wantCode int
		wantErr  string // substring required on stderr
	}{
		{
			name: "success is 0",
			args: func(dir string) []string {
				return []string{"-scenario", "chain-10", "-protocols", "RICA", "-trials", "1",
					"-duration", "5s", "-format", "json", "-out", filepath.Join(dir, "out.json")}
			},
			wantCode: 0,
		},
		{
			name: "usage error is 1",
			args: func(dir string) []string {
				return []string{"-scenario", "no-such-scenario"}
			},
			wantCode: 1,
			wantErr:  "no-such-scenario",
		},
		{
			name: "interrupted batch is 3",
			args: func(dir string) []string {
				return []string{"-scenario", "dense-urban", "-protocols", "RICA", "-trials", "50",
					"-duration", "30s", "-format", "json",
					"-manifest", filepath.Join(dir, "manifest"),
					"-out", filepath.Join(dir, "out.json")}
			},
			signals:  1,
			wantCode: exitCodeInterrupted,
			wantErr:  "interrupted",
		},
		{
			name: "second signal forces 130",
			args: func(dir string) []string {
				return []string{"-scenario", "dense-urban", "-protocols", "RICA", "-trials", "50",
					"-duration", "30s", "-format", "json",
					"-out", filepath.Join(dir, "out.json")}
			},
			signals:  2,
			wantCode: exitCodeForced,
			wantErr:  "forced exit",
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cmd := exec.Command(bin, tc.args(dir)...)
			stderr, err := cmd.StderrPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}

			var collected strings.Builder
			lines := make(chan string, 64)
			go func() {
				sc := bufio.NewScanner(stderr)
				for sc.Scan() {
					lines <- sc.Text()
				}
				close(lines)
			}()

			if tc.signals > 0 {
				// First progress line proves the batch is mid-grid with
				// the signal handler installed.
				waitForLine(t, lines, &collected, "[")
				_ = cmd.Process.Signal(syscall.SIGINT)
				if tc.signals > 1 {
					waitForLine(t, lines, &collected, "draining")
					_ = cmd.Process.Signal(syscall.SIGINT)
				}
			}
			for line := range lines {
				collected.WriteString(line)
				collected.WriteByte('\n')
			}
			code := 0
			if err := cmd.Wait(); err != nil {
				var ee *exec.ExitError
				if !errors.As(err, &ee) {
					t.Fatal(err)
				}
				code = ee.ExitCode()
			}
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d\nstderr:\n%s", code, tc.wantCode, collected.String())
			}
			if tc.wantErr != "" && !strings.Contains(collected.String(), tc.wantErr) {
				t.Errorf("stderr lacks %q:\n%s", tc.wantErr, collected.String())
			}
		})
	}
}

// waitForLine reads lines until one contains substr, accumulating them.
func waitForLine(t *testing.T, lines <-chan string, collected *strings.Builder, substr string) {
	t.Helper()
	deadline := time.After(60 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stderr closed before %q appeared:\n%s", substr, collected.String())
			}
			collected.WriteString(line)
			collected.WriteByte('\n')
			if strings.Contains(line, substr) {
				return
			}
		case <-deadline:
			t.Fatalf("no %q line within deadline:\n%s", substr, collected.String())
		}
	}
}

// TestInterruptedManifestResumes closes the loop on exit code 3: a
// second run over the same manifest restores the journaled cells and
// finishes with 0.
func TestInterruptedManifestResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := ricasimBinary(t)
	dir := t.TempDir()
	args := []string{"-scenario", "dense-urban", "-protocols", "RICA", "-trials", "50",
		"-duration", "30s", "-format", "json",
		"-manifest", filepath.Join(dir, "manifest"),
		"-out", filepath.Join(dir, "out.json")}

	first := exec.Command(bin, args...)
	stderr, err := first.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	var collected strings.Builder
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitForLine(t, lines, &collected, "[1/")
	_ = first.Process.Signal(syscall.SIGINT)
	for range lines {
	}
	err = first.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != exitCodeInterrupted {
		t.Fatalf("first run: %v (stderr:\n%s)", err, collected.String())
	}

	second := exec.Command(bin, args...)
	out, err := second.CombinedOutput()
	if err != nil {
		t.Fatalf("resume run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "manifest: restored") {
		t.Errorf("resume run did not restore journaled cells:\n%s", out)
	}
}
