// Command ricasim regenerates the tables behind every figure of the RICA
// paper's evaluation (ICDCS 2002, §III) and mass-executes declarative
// scenarios through the parallel batch engine.
//
// Usage:
//
//	ricasim -figure 2a                    # one figure at CI scale
//	ricasim -figure all -trials 25 -duration 500s   # full paper scale
//	ricasim -figure 3b -protocols RICA,AODV -speeds 0,36,72
//	ricasim -list-scenarios               # the built-in scenario catalog
//	ricasim -scenario dense-urban -protocols RICA,AODV -out results.json
//	ricasim -scenario chain-10,grid-8x8 -trials 5 -format csv
//	ricasim -scenario my-spec.json        # a hand-written JSON spec
//	ricasim -scenario partition-heal -timeline out.jsonl -interval 1s
//	ricasim -figure 2a -events-per-sec    # append a kernel-throughput summary line
//
// Figures: 2a/2b delay, 3a/3b delivery, 4a/4b overhead (a = 10 packets/s,
// b = 20 packets/s), 5a/5b route quality at 72 km/h, 6a/6b throughput
// time series (20 and 60 packets/s).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rica"
)

// Exit statuses: 0 success, 1 error, exitInterrupted when a signal (or
// a second one, forcing) cut the work short — so schedulers and CI can
// tell "failed" from "stopped early, resume me".
const (
	exitCodeInterrupted = 3
	exitCodeForced      = 130
)

func main() {
	// `ricasim serve` is a subcommand with its own flag set: the
	// long-lived self-healing service that re-execs this binary as its
	// batch workers.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	var (
		figure      = flag.String("figure", "all", "figure to regenerate: 2a..6b or 'all'")
		trials      = flag.Int("trials", 5, "trials per experimental cell (paper: 25)")
		duration    = flag.Duration("duration", 120*time.Second, "simulated time per trial (paper: 500s; scenarios default to their spec)")
		seed        = flag.Int64("seed", 1, "base random seed; trial t uses seed+t")
		speeds      = flag.String("speeds", "0,12,24,36,48,60,72", "comma-separated mean speeds (km/h)")
		protocols   = flag.String("protocols", "", "comma-separated protocol subset (default: all five)")
		format      = flag.String("format", "table", "output format: table, csv, json (batch), or chart (figures 6a/6b)")
		parallelism = flag.Int("parallelism", 0, "max concurrent trials — whole runs side by side (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 1, "spatial shards inside each run: broadcast geometry fans out across this many cores (0 = GOMAXPROCS, 1 = serial); results are bit-identical for every value, unlike -parallelism this speeds up a single run")
		scenarios   = flag.String("scenario", "", "run a batch over comma-separated scenario names and/or JSON spec files")
		verify      = flag.Bool("verify", false, "run each -scenario cell under the invariant harness (conservation, ledger agreement, replay determinism, zero leak) instead of the batch engine; exits 1 on any violation")
		list        = flag.Bool("list-scenarios", false, "print the built-in scenario catalog and exit")
		out         = flag.String("out", "", "write batch results to this file (.json or .csv; default stdout)")
		timeline    = flag.String("timeline", "", "write per-interval telemetry for every batch cell to this file (.csv for CSV, anything else for JSONL)")
		interval    = flag.Duration("interval", time.Second, "telemetry bucket width for -timeline")
		streaming   = flag.Bool("streaming", false, "bounded-memory -timeline percentiles (histogram approximation, ~3% error; see docs/OBSERVABILITY.md)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile taken at exit to this file")
		eventsRate  = flag.Bool("events-per-sec", false, "print kernel throughput (events simulated per wall-clock second) after the run")
		stats       = flag.Duration("stats", 0, "emit a live counter heartbeat to stderr at this period (scenario batches; 0 disables)")
		statsAddr   = flag.String("statsaddr", "", "serve live stats over HTTP on this address (GET /stats.json, /metrics)")
		obsOut      = flag.String("obs", "", "write the end-of-process observability snapshot (counters + pool stats) to this JSON file")
		ckptPath    = flag.String("checkpoint", "", "run a single -scenario cell writing periodic crash-safe snapshots to this file (atomic rename; resume with -resume); see docs/OPERATIONS.md")
		ckptEvery   = flag.Duration("checkpoint-every", 10*time.Second, "virtual-time cadence between -checkpoint snapshots")
		resumePath  = flag.String("resume", "", "resume a snapshot file: rebuild the run, replay to the capture instant, verify state byte-for-byte, run to the horizon")
		manifest    = flag.String("manifest", "", "journal every finished -scenario batch cell to this append-only file (fsync'd per cell); re-running the same grid resumes from it")
	)
	flag.Parse()
	meter.enabled = *eventsRate
	meter.start = time.Now()
	defer meter.print()

	if flagSet("interval") && *interval <= 0 {
		fatalf("-interval must be positive, got %v", *interval)
	}
	if *streaming && *timeline == "" {
		fatalf("-streaming only applies to -timeline batches")
	}
	if *stats < 0 {
		fatalf("-stats must be positive, got %v", *stats)
	}
	if *shards < 0 {
		fatalf("-shards must be non-negative, got %d (0 = one shard per core)", *shards)
	}
	if *shards == 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	if *ckptEvery <= 0 {
		fatalf("-checkpoint-every must be positive, got %v", *ckptEvery)
	}
	if *resumePath != "" {
		for _, bad := range []string{"figure", "scenario", "verify", "timeline", "out", "manifest", "list-scenarios"} {
			if flagSet(bad) {
				fatalf("-resume and -%s are mutually exclusive", bad)
			}
		}
	}
	if *ckptPath != "" && *resumePath == "" {
		if *scenarios == "" {
			fatalf("-checkpoint needs a -scenario cell to run (or -resume to continue one)")
		}
		for _, bad := range []string{"figure", "verify", "timeline", "out", "manifest"} {
			if flagSet(bad) {
				fatalf("-checkpoint and -%s are mutually exclusive", bad)
			}
		}
	}
	if *manifest != "" {
		if *timeline != "" {
			fatalf("-manifest and -timeline are mutually exclusive (timelines are not journaled)")
		}
		if *verify {
			fatalf("-manifest and -verify are mutually exclusive")
		}
	}
	var hub *rica.ObsHub
	if *stats > 0 || *statsAddr != "" || *obsOut != "" {
		hub = rica.NewObsHub()
		hub.PoolFunc = rica.PoolStats
		hub.ShardFunc = rica.ShardStats
	}
	if *statsAddr != "" {
		ln, err := net.Listen("tcp", *statsAddr)
		if err != nil {
			fatalf("-statsaddr: %v", err)
		}
		fmt.Fprintf(os.Stderr, "stats: serving http://%s/stats.json and http://%s/metrics\n",
			ln.Addr(), ln.Addr())
		srv := &http.Server{Handler: hub.Handler()}
		go func() { _ = srv.Serve(ln) }() // dies with the process
	}
	if *stats > 0 {
		go heartbeat(hub, *stats)
	}
	if *obsOut != "" {
		path := *obsOut
		exitHooks = append(exitHooks, func() {
			data, err := json.MarshalIndent(hub.Snapshot(), "", "  ")
			if err != nil {
				profileErrf("-obs: %v", err)
				return
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				profileErrf("-obs: %v", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		})
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		exitHooks = append(exitHooks, func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				profileErrf("-cpuprofile: %v", err)
			}
		})
	}
	if *memprofile != "" {
		path := *memprofile
		exitHooks = append(exitHooks, func() {
			f, err := os.Create(path)
			if err != nil {
				profileErrf("-memprofile: %v", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				profileErrf("-memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				profileErrf("-memprofile: %v", err)
			}
		})
	}
	defer func() {
		runExitHooks()
		if exitFailed {
			os.Exit(1)
		}
	}()

	if *list {
		if *eventsRate {
			fatalf("-events-per-sec needs a run; it cannot meter -list-scenarios")
		}
		listScenarios()
		return
	}
	if *verify && *scenarios == "" {
		fatalf("-verify needs -scenario cells to check")
	}
	if *resumePath != "" {
		if runResume(*resumePath, *ckptPath, *ckptEvery, installStopSignal()) {
			exitCutShort()
		}
		return
	}
	if *scenarios != "" {
		if flagSet("figure") {
			fatalf("-figure and -scenario are mutually exclusive")
		}
		if *verify {
			var maxDur time.Duration
			if flagSet("duration") {
				maxDur = *duration
			}
			runVerify(*scenarios, *protocols, *seed, *shards, maxDur)
			return
		}
		if *ckptPath != "" {
			if runCheckpointed(*scenarios, *protocols, *seed, *shards, *duration, flagSet("duration"),
				*ckptPath, *ckptEvery, installStopSignal()) {
				exitCutShort()
			}
			return
		}
		if runBatch(*scenarios, *protocols, *trials, *seed, *parallelism, *shards,
			*duration, *format, *out, *timeline, *interval, *streaming, *manifest, hub,
			installStopSignal()) {
			exitCutShort()
		}
		return
	}

	if *format == "json" {
		fatalf("-format json is only supported with -scenario batches")
	}
	if *out != "" {
		fatalf("-out is only supported with -scenario batches")
	}
	if *timeline != "" {
		fatalf("-timeline is only supported with -scenario batches")
	}
	// The figure experiments simulate the paper's 50-terminal field; more
	// shards than terminals could never all own work.
	if *shards > 50 {
		fatalf("-shards %d exceeds the figure experiments' 50 terminals", *shards)
	}
	opts := rica.Options{
		Trials:      *trials,
		Duration:    *duration,
		BaseSeed:    *seed,
		Parallelism: *parallelism,
		Shards:      *shards,
	}
	var err error
	if opts.Speeds, err = parseFloats(*speeds); err != nil {
		fatalf("bad -speeds: %v", err)
	}
	opts.Protocols = parseProtocols(*protocols)

	want := strings.ToLower(*figure)
	ran := false
	run := func(id string, fn func()) {
		if want == "all" || want == id {
			fn()
			ran = true
		}
	}

	var sweep10, sweep20 *rica.SweepResult
	getSweep := func(load float64) rica.SweepResult {
		cache := &sweep10
		if load == 20 {
			cache = &sweep20
		}
		if *cache == nil {
			fmt.Fprintf(os.Stderr, "running %d-cell sweep at %.0f packets/s (%d trials × %v)...\n",
				len(opts.Speeds)*len(protocolsOf(opts)), load, opts.Trials, opts.Duration)
			s := rica.Sweep(load, opts)
			for _, rows := range s.Cells {
				for _, r := range rows {
					meter.addTrials(r.Trials)
				}
			}
			*cache = &s
		}
		return **cache
	}

	sweepOut := func(load float64, m rica.Metric) {
		s := getSweep(load)
		if *format == "csv" {
			fmt.Println(s.CSV(m))
			return
		}
		fmt.Println(s.Table(m))
	}
	run("2a", func() { sweepOut(10, rica.MetricDelay) })
	run("2b", func() { sweepOut(20, rica.MetricDelay) })
	run("3a", func() { sweepOut(10, rica.MetricDelivery) })
	run("3b", func() { sweepOut(20, rica.MetricDelivery) })
	run("4a", func() { sweepOut(10, rica.MetricOverhead) })
	run("4b", func() { sweepOut(20, rica.MetricOverhead) })

	var quality *rica.QualityResult
	getQuality := func() rica.QualityResult {
		if quality == nil {
			fmt.Fprintln(os.Stderr, "running route-quality cells at 72 km/h...")
			q := rica.Quality(72, 10, opts)
			for _, r := range q.Cells {
				meter.addTrials(r.Trials)
			}
			quality = &q
		}
		return *quality
	}
	qualityOut := func() {
		if *format == "csv" {
			fmt.Println(getQuality().CSV())
			return
		}
		fmt.Println(getQuality().Table())
	}
	run("5a", func() { qualityOut() })
	run("5b", func() {
		if want == "5b" { // avoid printing the shared table twice under 'all'
			qualityOut()
		}
	})

	seriesOut := func(load float64) {
		s := rica.Series(load, rica.Figure6SpeedKmh, opts)
		for _, r := range s.Cells {
			meter.addTrials(r.Trials)
		}
		switch *format {
		case "csv":
			fmt.Println(s.CSV())
		case "chart":
			fmt.Println(s.Chart())
		default:
			fmt.Println(s.Table())
		}
	}
	run("6a", func() { seriesOut(20) })
	run("6b", func() { seriesOut(60) })

	if !ran {
		fatalf("unknown figure %q (want 2a..6b or all)", *figure)
	}
}

// installStopSignal arms graceful interruption for modes that support
// it: the first SIGINT/SIGTERM closes the returned channel (in-flight
// work drains, buffers flush, a final snapshot or journal line lands,
// and the process exits with the distinct interrupted status); a second
// signal forces an immediate exit.
func installStopSignal() chan struct{} {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ricasim: interrupt — draining in-flight work and flushing output; interrupt again to force exit")
		close(stop)
		<-sig
		fmt.Fprintln(os.Stderr, "ricasim: forced exit")
		os.Exit(exitCodeForced)
	}()
	return stop
}

// exitCutShort finishes the exit hooks (profiles, -obs) and the
// throughput summary, then leaves with the interrupted status so
// callers know the output is partial and a snapshot or manifest can
// resume the work.
func exitCutShort() {
	runExitHooks()
	meter.print()
	if exitFailed {
		os.Exit(1)
	}
	os.Exit(exitCodeInterrupted)
}

// loadSpec resolves one -scenario element: a catalog name or a path to
// a JSON spec file.
func loadSpec(part string) rica.Scenario {
	part = strings.TrimSpace(part)
	var (
		spec rica.Scenario
		err  error
	)
	if strings.HasSuffix(part, ".json") {
		spec, err = rica.LoadScenario(part)
	} else {
		spec, err = rica.ScenarioByName(part)
	}
	if err != nil {
		fatalf("%v", err)
	}
	return spec
}

// runCheckpointed executes one scenario × protocol cell under the
// periodic-snapshot regime. Returns true when the run was interrupted
// (the final snapshot resumes it).
func runCheckpointed(scenarioArg, protocols string, seed int64, shards int,
	duration time.Duration, durationSet bool, path string, every time.Duration,
	stop <-chan struct{}) bool {
	if strings.Contains(scenarioArg, ",") {
		fatalf("-checkpoint runs a single scenario; got %q", scenarioArg)
	}
	protos := parseProtocols(protocols)
	if len(protos) != 1 {
		fatalf("-checkpoint runs a single cell: pass -protocols with exactly one name")
	}
	spec := loadSpec(scenarioArg)
	if durationSet {
		spec.Duration = rica.ScenarioDuration(duration)
	}
	if n := spec.Topology.NodeCount(); shards > n {
		fatalf("-shards %d exceeds scenario %s's %d nodes", shards, spec.Name, n)
	}
	r := rica.ScenarioRun{Scenario: spec, Protocol: protos[0], Seed: seed, Shards: shards}
	s, interrupted, err := rica.RunCheckpointed(r, path, every, stop)
	if interrupted {
		fmt.Fprintf(os.Stderr, "ricasim: interrupted — resume with: ricasim -resume %s\n", path)
		return true
	}
	if err != nil {
		fatalf("%v", err)
	}
	printRunResult(s)
	return false
}

// runResume continues a snapshot to its horizon (optionally still
// checkpointing). Returns true when interrupted again.
func runResume(path, ckpt string, every time.Duration, stop <-chan struct{}) bool {
	f, err := os.Open(path)
	if err != nil {
		fatalf("-resume: %v", err)
	}
	defer f.Close()
	s, interrupted, err := rica.ResumeCheckpointed(f, ckpt, every, stop)
	if interrupted {
		fmt.Fprintln(os.Stderr, "ricasim: interrupted again before the horizon")
		return true
	}
	if err != nil {
		fatalf("-resume: %v", err)
	}
	printRunResult(s)
	return false
}

// printRunResult emits a single checkpointed/resumed run's summary. The
// fingerprint line is the contract CI's kill-and-resume job diffs: a
// resumed run must print the exact line the uninterrupted run prints.
func printRunResult(s rica.Summary) {
	meter.events += s.Events
	fmt.Printf("fingerprint: %s\n", rica.Fingerprint(s))
	fmt.Printf("gen=%d del=%d delivery=%.1f%% avg-delay=%v events=%d\n",
		s.Generated, s.Delivered, s.DeliveryRatio*100, s.AvgDelay, s.Events)
}

// listScenarios prints the built-in catalog.
func listScenarios() {
	fmt.Printf("%-16s%7s%10s  %s\n", "name", "nodes", "duration", "description")
	for _, name := range rica.ScenarioNames() {
		s, err := rica.ScenarioByName(name)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%-16s%7d%10s  %s\n",
			s.Name, s.Topology.NodeCount(), time.Duration(s.Duration), s.Description)
	}
}

// runVerify puts every scenario × protocol cell through the invariant
// harness, one at a time (the pooled-packet leak check needs the process
// to itself). Each cell simulates twice: once for the ledger checks,
// once to prove replay determinism.
func runVerify(list, protocols string, seed int64, shards int, maxDur time.Duration) {
	protos := parseProtocols(protocols)
	if protos == nil {
		protos = rica.AllProtocols()
	}
	failed := false
	for _, part := range strings.Split(list, ",") {
		spec := loadSpec(part)
		for _, p := range protos {
			s, err := rica.VerifyScenario(rica.ScenarioRun{
				Scenario: spec, Protocol: p, Seed: seed,
				Shards: shards, MaxDuration: maxDur,
			})
			meter.events += 2 * s.Events // the harness runs each cell twice
			if err != nil {
				failed = true
				fmt.Printf("FAIL  %s/%s: %v\n", spec.Name, p, err)
				continue
			}
			fmt.Printf("ok    %s/%s gen=%d del=%d events=%d\n",
				spec.Name, p, s.Generated, s.Delivered, s.Events)
		}
	}
	if failed {
		runExitHooks()
		os.Exit(1)
	}
}

// runBatch executes the scenario × protocol × seed grid and writes the
// results in the requested format. Returns true when the grid was
// interrupted: the partial results and telemetry still flush (and the
// manifest, when set, journals every finished cell for resume), but the
// process must exit with the interrupted status.
func runBatch(list, protocols string, trials int, seed int64, parallelism, shards int,
	duration time.Duration, format, out, timeline string, interval time.Duration,
	streaming bool, manifest string, hub *rica.ObsHub, stop <-chan struct{}) bool {
	durationSet := flagSet("duration")
	outFormat := ""
	if out != "" {
		outFormat = outputFormat(out, format) // resolve (and conflict-check) up front
	}

	cfg := rica.BatchConfig{
		Trials:   trials,
		BaseSeed: seed,
		Workers:  parallelism,
		Shards:   shards,
		Hub:      hub,
		Manifest: manifest,
		Stop:     stop,
		OnProgress: func(p rica.BatchProgress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s seed=%d delivery=%.1f%%\n",
				p.Done, p.Total, p.Cell.Scenario, p.Cell.Protocol, p.Cell.Seed, p.Cell.DeliveryPct)
		},
	}

	var (
		timelineFile *os.File
		timelineBuf  *bufio.Writer
	)
	if timeline != "" {
		f, err := os.Create(timeline)
		if err != nil {
			fatalf("-timeline: %v", err)
		}
		timelineFile = f
		// Sinks write one small row per interval; buffer them so a
		// metro-scale batch isn't syscall-bound on telemetry export.
		timelineBuf = bufio.NewWriter(f)
		sink := rica.NewJSONLTimelineSink(timelineBuf)
		sinkFormat := "JSONL"
		if strings.HasSuffix(timeline, ".csv") {
			sink = rica.NewCSVTimelineSink(timelineBuf)
			sinkFormat = "CSV"
		}
		fmt.Fprintf(os.Stderr, "timeline: writing %s to %s (%v buckets)\n",
			sinkFormat, timeline, interval)
		cfg.Telemetry = &rica.BatchTelemetry{Interval: interval, Sink: sink, Streaming: streaming}
	}
	for _, part := range strings.Split(list, ",") {
		spec := loadSpec(part)
		if durationSet {
			spec.Duration = rica.ScenarioDuration(duration)
		}
		if n := spec.Topology.NodeCount(); shards > n {
			fatalf("-shards %d exceeds scenario %s's %d nodes", shards, spec.Name, n)
		}
		cfg.Scenarios = append(cfg.Scenarios, spec)
	}
	cfg.Protocols = parseProtocols(protocols)

	// Open the output before burning batch time on it.
	var outFile *os.File
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatalf("%v", err)
		}
		outFile = f
	}

	res, err := rica.RunBatch(cfg)
	interrupted := errors.Is(err, rica.ErrBatchInterrupted)
	if err != nil && !interrupted {
		fatalf("%v", err)
	}
	if res.Restored > 0 {
		fmt.Fprintf(os.Stderr, "manifest: restored %d of %d cells from %s\n",
			res.Restored, len(res.Cells), manifest)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "ricasim: interrupted — flushing partial results")
	}
	for _, c := range res.Cells {
		meter.events += c.Events
	}
	// Flush even when interrupted: the whole point of a graceful stop is
	// that buffered timeline and result bytes reach disk.
	if timelineFile != nil {
		err := timelineBuf.Flush()
		if cerr := timelineFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("writing %s: %v", timeline, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", timeline)
	}
	if res.Poisoned > 0 {
		fmt.Fprintf(os.Stderr, "ricasim: %d poisoned cell(s) — quarantined, see their error/stack fields in the results\n", res.Poisoned)
		exitFailed = true // non-zero exit after output is written
	}

	if outFile != nil {
		if outFormat == "csv" {
			err = res.WriteCSV(outFile)
		} else {
			err = res.WriteJSON(outFile)
		}
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("writing %s: %v", out, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		fmt.Print(res.Table())
		return interrupted
	}
	switch format {
	case "json":
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	case "csv":
		if err := res.WriteCSV(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	default:
		fmt.Print(res.Table())
	}
	return interrupted
}

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// outputFormat resolves what bytes go into -out. The file extension is
// authoritative (.json/.csv); an explicitly conflicting -format is an
// error, and other extensions follow -format (defaulting to json).
func outputFormat(out, format string) string {
	ext := ""
	switch {
	case strings.HasSuffix(out, ".json"):
		ext = "json"
	case strings.HasSuffix(out, ".csv"):
		ext = "csv"
	}
	if ext != "" {
		if flagSet("format") && format != ext && (format == "json" || format == "csv") {
			fatalf("-format %s conflicts with -out %s", format, out)
		}
		return ext
	}
	if format == "csv" || format == "json" {
		return format
	}
	return "json"
}

// parseProtocols resolves a comma-separated protocol subset; empty means
// "all five" (nil).
func parseProtocols(s string) []rica.Protocol {
	if s == "" {
		return nil
	}
	var out []rica.Protocol
	for _, name := range strings.Split(s, ",") {
		p, err := rica.ParseProtocol(strings.TrimSpace(name))
		if err != nil {
			fatalf("%v", err)
		}
		out = append(out, p)
	}
	return out
}

func protocolsOf(o rica.Options) []rica.Protocol {
	if o.Protocols != nil {
		return o.Protocols
	}
	return rica.AllProtocols()
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// heartbeat prints a one-line live counter summary every period until the
// process exits. It only reads the hub's folded atomics — it never blocks
// or perturbs the simulation goroutines.
func heartbeat(hub *rica.ObsHub, period time.Duration) {
	tick := time.NewTicker(period)
	defer tick.Stop()
	for range tick.C {
		s := hub.Snapshot()
		line := fmt.Sprintf("stats: sim=%s events=%d gen=%d dlv=%d p50=%s queue=%d",
			time.Duration(s.SimNowNs).Round(time.Millisecond),
			s.EventsDispatched, s.TrafficGenerated, s.DelayCount,
			time.Duration(s.DelayP50Ns).Round(time.Microsecond), s.QueueDepth)
		if s.Pool != nil {
			line += fmt.Sprintf(" pool=%d/hw%d", s.Pool.Live, s.Pool.HighWater)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

// eventMeter accumulates kernel event counts across every run the command
// performs, so -events-per-sec can report simulator throughput without a
// separate benchmark invocation.
type eventMeter struct {
	enabled bool
	start   time.Time
	events  uint64
}

var meter eventMeter

// addTrials folds one experiment cell's per-trial summaries in.
func (m *eventMeter) addTrials(trials []rica.Summary) {
	for _, s := range trials {
		m.events += s.Events
	}
}

// print emits the summary line when metering is on and something ran.
func (m *eventMeter) print() {
	if !m.enabled {
		return
	}
	secs := time.Since(m.start).Seconds()
	if m.events == 0 || secs <= 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "kernel: %d events in %.2fs wall = %.0f events/sec\n",
		m.events, secs, float64(m.events)/secs)
}

// exitHooks finish in-flight profiling. They run (last added first) both
// on normal return and before fatalf's os.Exit, so an error anywhere in
// a profiled run still leaves valid, closed profile files behind.
var exitHooks []func()

// exitFailed records a late failure (a profile-write error from an exit
// hook, or poisoned batch cells) that must surface as exit status 1
// after all output has been written (hooks must not call fatalf — it
// would re-enter them).
var exitFailed bool

func profileErrf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ricasim: "+format+"\n", args...)
	exitFailed = true
}

func runExitHooks() {
	hooks := exitHooks
	exitHooks = nil
	for i := len(hooks) - 1; i >= 0; i-- {
		hooks[i]()
	}
}

func fatalf(format string, args ...any) {
	runExitHooks()
	fmt.Fprintf(os.Stderr, "ricasim: "+format+"\n", args...)
	os.Exit(1)
}
