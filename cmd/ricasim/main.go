// Command ricasim regenerates the tables behind every figure of the RICA
// paper's evaluation (ICDCS 2002, §III).
//
// Usage:
//
//	ricasim -figure 2a                    # one figure at CI scale
//	ricasim -figure all -trials 25 -duration 500s   # full paper scale
//	ricasim -figure 3b -protocols RICA,AODV -speeds 0,36,72
//
// Figures: 2a/2b delay, 3a/3b delivery, 4a/4b overhead (a = 10 packets/s,
// b = 20 packets/s), 5a/5b route quality at 72 km/h, 6a/6b throughput
// time series (20 and 60 packets/s).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rica"
)

func main() {
	var (
		figure    = flag.String("figure", "all", "figure to regenerate: 2a..6b or 'all'")
		trials    = flag.Int("trials", 5, "trials per experimental cell (paper: 25)")
		duration  = flag.Duration("duration", 120*time.Second, "simulated time per trial (paper: 500s)")
		seed      = flag.Int64("seed", 1, "base random seed; trial t uses seed+t")
		speeds    = flag.String("speeds", "0,12,24,36,48,60,72", "comma-separated mean speeds (km/h)")
		protocols = flag.String("protocols", "", "comma-separated protocol subset (default: all five)")
		format    = flag.String("format", "table", "output format: table, csv, or chart (chart: figures 6a/6b only)")
	)
	flag.Parse()

	opts := rica.Options{
		Trials:   *trials,
		Duration: *duration,
		BaseSeed: *seed,
	}
	var err error
	if opts.Speeds, err = parseFloats(*speeds); err != nil {
		fatalf("bad -speeds: %v", err)
	}
	if *protocols != "" {
		for _, name := range strings.Split(*protocols, ",") {
			p, err := rica.ParseProtocol(strings.TrimSpace(name))
			if err != nil {
				fatalf("%v", err)
			}
			opts.Protocols = append(opts.Protocols, p)
		}
	}

	want := strings.ToLower(*figure)
	ran := false
	run := func(id string, fn func()) {
		if want == "all" || want == id {
			fn()
			ran = true
		}
	}

	var sweep10, sweep20 *rica.SweepResult
	getSweep := func(load float64) rica.SweepResult {
		cache := &sweep10
		if load == 20 {
			cache = &sweep20
		}
		if *cache == nil {
			fmt.Fprintf(os.Stderr, "running %d-cell sweep at %.0f packets/s (%d trials × %v)...\n",
				len(opts.Speeds)*len(protocolsOf(opts)), load, opts.Trials, opts.Duration)
			s := rica.Sweep(load, opts)
			*cache = &s
		}
		return **cache
	}

	sweepOut := func(load float64, m rica.Metric) {
		s := getSweep(load)
		if *format == "csv" {
			fmt.Println(s.CSV(m))
			return
		}
		fmt.Println(s.Table(m))
	}
	run("2a", func() { sweepOut(10, rica.MetricDelay) })
	run("2b", func() { sweepOut(20, rica.MetricDelay) })
	run("3a", func() { sweepOut(10, rica.MetricDelivery) })
	run("3b", func() { sweepOut(20, rica.MetricDelivery) })
	run("4a", func() { sweepOut(10, rica.MetricOverhead) })
	run("4b", func() { sweepOut(20, rica.MetricOverhead) })

	var quality *rica.QualityResult
	getQuality := func() rica.QualityResult {
		if quality == nil {
			fmt.Fprintln(os.Stderr, "running route-quality cells at 72 km/h...")
			q := rica.Quality(72, 10, opts)
			quality = &q
		}
		return *quality
	}
	qualityOut := func() {
		if *format == "csv" {
			fmt.Println(getQuality().CSV())
			return
		}
		fmt.Println(getQuality().Table())
	}
	run("5a", func() { qualityOut() })
	run("5b", func() {
		if want == "5b" { // avoid printing the shared table twice under 'all'
			qualityOut()
		}
	})

	seriesOut := func(load float64) {
		s := rica.Series(load, rica.Figure6SpeedKmh, opts)
		switch *format {
		case "csv":
			fmt.Println(s.CSV())
		case "chart":
			fmt.Println(s.Chart())
		default:
			fmt.Println(s.Table())
		}
	}
	run("6a", func() { seriesOut(20) })
	run("6b", func() { seriesOut(60) })

	if !ran {
		fatalf("unknown figure %q (want 2a..6b or all)", *figure)
	}
}

func protocolsOf(o rica.Options) []rica.Protocol {
	if o.Protocols != nil {
		return o.Protocols
	}
	return rica.AllProtocols()
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ricasim: "+format+"\n", args...)
	os.Exit(1)
}
