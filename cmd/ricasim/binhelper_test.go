package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// The subprocess tests (exit-code contract, serve chaos) run the real
// binary: build it once per test process and share the path.
var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
	buildDir  string
)

func ricasimBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "ricasim-bin-")
		if buildErr != nil {
			return
		}
		buildPath = filepath.Join(buildDir, "ricasim")
		cmd := exec.Command("go", "build", "-o", buildPath, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("go build: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building ricasim: %v", buildErr)
	}
	return buildPath
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}
