package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rica/internal/serve"
)

// serveMain runs `ricasim serve`: the long-lived self-healing
// simulation service. Jobs are submitted over HTTP and executed by
// supervised child workers — each worker is this same binary in batch
// mode with a manifest journal, so a crashed or killed worker restarts
// and resumes with zero recompute and results stay byte-identical to
// an undisturbed run. See docs/OPERATIONS.md, "Service mode".
func serveMain(args []string) {
	fs := flag.NewFlagSet("ricasim serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:7117", "HTTP listen address for the control plane")
		data         = fs.String("data", "ricasim-serve", "data directory (job specs, manifest journals, results)")
		maxActive    = fs.Int("max-active", 1, "jobs running at once (each worker parallelizes internally)")
		maxQueue     = fs.Int("max-queue", 16, "queued-job bound; submissions past it get 429 + Retry-After")
		maxJobs      = fs.Int("max-jobs", 64, "job store bound; the oldest finished job is shed to admit new work")
		maxRestarts  = fs.Int("max-restarts", 10, "per-job crash/hang healing budget")
		hungTimeout  = fs.Duration("hung-timeout", 2*time.Minute, "kill a worker whose heartbeat stalls this long")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "SIGTERM drain bound before force-killing workers")
	)
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		fatalf("serve: unexpected argument %q", fs.Arg(0))
	}

	srv, err := serve.New(serve.Config{
		Dir:          *data,
		MaxActive:    *maxActive,
		MaxQueue:     *maxQueue,
		MaxJobs:      *maxJobs,
		MaxRestarts:  *maxRestarts,
		HungTimeout:  *hungTimeout,
		DrainTimeout: *drainTimeout,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		fatalf("serve: %v", err)
	}
	if err := srv.Start(); err != nil {
		fatalf("serve: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("serve: %v", err)
	}
	fmt.Fprintf(os.Stderr, "serve: control plane on http://%s (POST /jobs, GET /jobs/{id}, /healthz, /readyz, /metrics)\n", ln.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatalf("serve: http: %v", err)
		}
	}()

	// The exit-code contract matches the batch CLI: a signal drains
	// (workers journal in-flight grids) and exits 3 if anything was cut
	// short — a restarted daemon resumes it — or 0 if the store was
	// idle; a second signal forces exit 130.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	fmt.Fprintln(os.Stderr, "serve: signal — draining workers; signal again to force exit")
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "serve: forced exit")
		os.Exit(exitCodeForced)
	}()
	interrupted := srv.Shutdown()
	_ = httpSrv.Close()
	if interrupted {
		fmt.Fprintln(os.Stderr, "serve: drained with jobs interrupted — restart to resume them")
		exitWith(exitCodeInterrupted)
	}
}

// exitWith runs the registered exit hooks (profiles, obs snapshots)
// before leaving with the given code.
func exitWith(code int) {
	runExitHooks()
	os.Exit(code)
}
