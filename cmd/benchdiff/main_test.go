package main

import (
	"math"
	"strings"
	"testing"
)

// golden pre/post records covering the pairing matrix: a benchmark in
// both files, one only in the baseline, one only in the post run.
func goldenRecords() (benchRecord, benchRecord) {
	base := benchRecord{
		Label: "v7-baseline",
		Go:    "go1.21",
		Benchmarks: []benchLine{
			{Name: "BenchmarkSingleRun", NsPerOp: 2000, BytesPerOp: 4096, AllocsPerOp: 10, EventsPerSec: 1e6},
			{Name: "BenchmarkRetired", NsPerOp: 500, BytesPerOp: 64, AllocsPerOp: 1},
		},
	}
	post := benchRecord{
		Label: "v8-post",
		Go:    "go1.21",
		Benchmarks: []benchLine{
			{Name: "BenchmarkSingleRun", NsPerOp: 1000, BytesPerOp: 1024, AllocsPerOp: 4, EventsPerSec: 2.5e6},
			{Name: "BenchmarkNew", NsPerOp: 300, BytesPerOp: 32, AllocsPerOp: 2},
		},
	}
	return base, post
}

func findDelta(t *testing.T, rep report, name string) delta {
	t.Helper()
	for _, d := range rep.Deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("report has no delta for %s: %+v", name, rep.Deltas)
	return delta{}
}

func TestBuildReportGoldenDelta(t *testing.T) {
	base, post := goldenRecords()
	rep := buildReport(base, post)

	if rep.Baseline != "v7-baseline" || rep.Post != "v8-post" {
		t.Fatalf("labels not carried through: %q vs %q", rep.Baseline, rep.Post)
	}
	if len(rep.Deltas) != 3 {
		t.Fatalf("want 3 deltas (paired, baseline-only, post-only), got %d", len(rep.Deltas))
	}

	d := findDelta(t, rep, "BenchmarkSingleRun")
	if d.SpeedupNs != 2.0 {
		t.Errorf("speedup_ns = %v, want 2.0 (baseline/post ns)", d.SpeedupNs)
	}
	if d.AllocsRatio != 2.5 {
		t.Errorf("allocs_ratio = %v, want 2.5", d.AllocsRatio)
	}
	if d.BytesRatio != 4.0 {
		t.Errorf("bytes_ratio = %v, want 4.0", d.BytesRatio)
	}
	if d.EventsRatio != 2.5 {
		t.Errorf("events_per_sec_ratio = %v, want 2.5 (post/baseline)", d.EventsRatio)
	}
	if d.BaselineOnly || d.PostOnly {
		t.Errorf("paired benchmark flagged one-sided: %+v", d)
	}

	if d := findDelta(t, rep, "BenchmarkRetired"); !d.BaselineOnly || d.PostOnly || d.SpeedupNs != 0 {
		t.Errorf("baseline-only benchmark misreported: %+v", d)
	}
	if d := findDelta(t, rep, "BenchmarkNew"); !d.PostOnly || d.BaselineOnly || d.SpeedupNs != 0 {
		t.Errorf("post-only benchmark misreported: %+v", d)
	}

	want := "BenchmarkSingleRun: 2.00x time, 2.50x events/sec, 2.50x allocs"
	if rep.Summary != want {
		t.Errorf("summary = %q, want %q", rep.Summary, want)
	}
}

// Missing events/sec on either side must suppress the ratio rather than
// divide by zero, and a zero-valued metric yields ratio 0, not Inf.
func TestBuildReportDegenerateMetrics(t *testing.T) {
	base := benchRecord{Label: "a", Benchmarks: []benchLine{
		{Name: "BenchmarkX", NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
	}}
	post := benchRecord{Label: "b", Benchmarks: []benchLine{
		{Name: "BenchmarkX", NsPerOp: 50, BytesPerOp: 0, AllocsPerOp: 3, EventsPerSec: 1e5},
	}}
	rep := buildReport(base, post)
	d := findDelta(t, rep, "BenchmarkX")
	if d.SpeedupNs != 2.0 {
		t.Errorf("speedup_ns = %v, want 2.0", d.SpeedupNs)
	}
	if d.AllocsRatio != 0 || d.BytesRatio != 0 || d.EventsRatio != 0 {
		t.Errorf("zero-valued metrics must report ratio 0: %+v", d)
	}
	if math.IsInf(d.AllocsRatio, 0) || math.IsNaN(d.AllocsRatio) {
		t.Errorf("allocs ratio not finite: %v", d.AllocsRatio)
	}
	if strings.Contains(rep.Summary, "allocs") || strings.Contains(rep.Summary, "events/sec") {
		t.Errorf("summary mentions suppressed ratios: %q", rep.Summary)
	}
}

func TestBuildReportScalingSweep(t *testing.T) {
	base, post := goldenRecords()
	base.Scaling = []scalePoint{
		{Shards: 1, NsPerOp: 8000, EventsPerSec: 1e6},
		{Shards: 2, NsPerOp: 5000, EventsPerSec: 1.6e6},
		{Shards: 8, NsPerOp: 2000, EventsPerSec: 4e6},
	}
	post.Scaling = []scalePoint{
		{Shards: 1, NsPerOp: 4000, EventsPerSec: 2e6},
		{Shards: 2, NsPerOp: 2000, EventsPerSec: 4e6},
		{Shards: 4, NsPerOp: 1000, EventsPerSec: 8e6},
	}
	rep := buildReport(base, post)

	if len(rep.Scaling) != 4 {
		t.Fatalf("want 4 scaling deltas (shards 1,2,4,8), got %d: %+v", len(rep.Scaling), rep.Scaling)
	}
	for i, want := range []int{1, 2, 4, 8} {
		if rep.Scaling[i].Shards != want {
			t.Fatalf("scaling not sorted by shard count: %+v", rep.Scaling)
		}
	}

	s1 := rep.Scaling[0]
	if s1.SpeedupNs != 2.0 || s1.EventsRatio != 2.0 {
		t.Errorf("1-shard delta = %+v, want 2.0x both", s1)
	}
	if s1.BaselineScaling != 1.0 || s1.PostScaling != 1.0 {
		t.Errorf("1-shard self-scaling must be 1.0: %+v", s1)
	}

	s2 := rep.Scaling[1]
	if s2.SpeedupNs != 2.5 || s2.EventsRatio != 2.5 {
		t.Errorf("2-shard delta = %+v, want 2.5x both", s2)
	}
	if s2.BaselineScaling != 1.6 || s2.PostScaling != 2.0 {
		t.Errorf("2-shard speedup-vs-1-shard = %+v, want 1.6 baseline / 2.0 post", s2)
	}

	// Shards present on one side only still report that side's scaling.
	s4 := rep.Scaling[2]
	if s4.SpeedupNs != 0 || s4.EventsRatio != 0 {
		t.Errorf("post-only shard count must not cross-compare: %+v", s4)
	}
	if s4.BaselineScaling != 0 || s4.PostScaling != 4.0 {
		t.Errorf("post-only 4-shard scaling = %+v, want PostScaling 4.0", s4)
	}
	s8 := rep.Scaling[3]
	if s8.BaselineScaling != 4.0 || s8.PostScaling != 0 || s8.SpeedupNs != 0 {
		t.Errorf("baseline-only 8-shard scaling = %+v, want BaselineScaling 4.0", s8)
	}

	if !strings.Contains(rep.Summary, "scaling@2-shards: 2.00x vs 1-shard") {
		t.Errorf("summary missing paired scaling line: %q", rep.Summary)
	}
	if !strings.Contains(rep.Summary, "scaling@4-shards: 4.00x vs 1-shard") {
		t.Errorf("summary missing post-only scaling line: %q", rep.Summary)
	}
	if strings.Contains(rep.Summary, "scaling@8-shards") {
		t.Errorf("summary reports baseline-only shard count as post scaling: %q", rep.Summary)
	}
}

func TestDiffScalingEmpty(t *testing.T) {
	if got := diffScaling(nil, nil); got != nil {
		t.Errorf("no sweeps on either side must yield nil, got %+v", got)
	}
}

func TestRound3(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{1.23456, 1.235},
		{2.0, 2.0},
		{0.0004, 0.0},
		{0.9995, 1.0},
	} {
		if got := round3(tc.in); got != tc.want {
			t.Errorf("round3(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
