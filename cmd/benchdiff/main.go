// Command benchdiff compares two bench.sh JSON records and emits the
// delta summary the BENCH_<n>.json trajectory files embed: per-benchmark
// ratios for time, allocations, bytes, and events/sec, plus a one-line
// human summary. It replaces the hand-computed notes that accompanied
// earlier BENCH files.
//
// Usage:
//
//	benchdiff BASELINE.json POST.json
//
// The inputs are bench.sh outputs ({"label", "go", "benchmarks": [...]}).
// The delta JSON goes to stdout; the summary line to stderr.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchRecord mirrors bench.sh's fixed schema.
type benchRecord struct {
	Label      string       `json:"label"`
	Go         string       `json:"go"`
	Benchmarks []benchLine  `json:"benchmarks"`
	Scaling    []scalePoint `json:"scaling,omitempty"`
}

// scalePoint is one entry of the core-scaling sweep bench.sh records
// with -scaling (BenchmarkShardedThroughput at a fixed shard count).
type scalePoint struct {
	Shards       int     `json:"shards"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

type benchLine struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// delta is one benchmark's before/after comparison. Ratios are oriented
// so that bigger is better: time/bytes/allocs report baseline/post
// (speedup), events/sec reports post/baseline.
type delta struct {
	Name         string  `json:"name"`
	SpeedupNs    float64 `json:"speedup_ns,omitempty"`
	AllocsRatio  float64 `json:"allocs_ratio,omitempty"`
	BytesRatio   float64 `json:"bytes_ratio,omitempty"`
	EventsRatio  float64 `json:"events_per_sec_ratio,omitempty"`
	BaselineOnly bool    `json:"baseline_only,omitempty"`
	PostOnly     bool    `json:"post_only,omitempty"`
}

// scaleDelta is one shard count's before/after comparison, plus each
// record's own speedup over its 1-shard point (how much the shards buy
// relative to running the same build serially).
type scaleDelta struct {
	Shards          int     `json:"shards"`
	SpeedupNs       float64 `json:"speedup_ns,omitempty"`
	EventsRatio     float64 `json:"events_per_sec_ratio,omitempty"`
	BaselineScaling float64 `json:"baseline_speedup_vs_1shard,omitempty"`
	PostScaling     float64 `json:"post_speedup_vs_1shard,omitempty"`
}

type report struct {
	Baseline string       `json:"baseline"`
	Post     string       `json:"post"`
	Deltas   []delta      `json:"deltas"`
	Scaling  []scaleDelta `json:"scaling,omitempty"`
	Summary  string       `json:"summary"`
}

func load(path string) (benchRecord, error) {
	var r benchRecord
	raw, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(raw, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func ratio(base, post float64) float64 {
	if base <= 0 || post <= 0 {
		return 0
	}
	return base / post
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff BASELINE.json POST.json")
		os.Exit(2)
	}
	base, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	post, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	rep := buildReport(base, post)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, rep.Summary)
}

// buildReport computes the full delta report for two bench records.
func buildReport(base, post benchRecord) report {
	postBy := make(map[string]benchLine, len(post.Benchmarks))
	for _, b := range post.Benchmarks {
		postBy[b.Name] = b
	}

	rep := report{Baseline: base.Label, Post: post.Label}
	summary := ""
	seen := make(map[string]bool)
	for _, b := range base.Benchmarks {
		seen[b.Name] = true
		p, ok := postBy[b.Name]
		if !ok {
			rep.Deltas = append(rep.Deltas, delta{Name: b.Name, BaselineOnly: true})
			continue
		}
		d := delta{
			Name:        b.Name,
			SpeedupNs:   round3(ratio(b.NsPerOp, p.NsPerOp)),
			AllocsRatio: round3(ratio(b.AllocsPerOp, p.AllocsPerOp)),
			BytesRatio:  round3(ratio(b.BytesPerOp, p.BytesPerOp)),
		}
		if b.EventsPerSec > 0 && p.EventsPerSec > 0 {
			d.EventsRatio = round3(p.EventsPerSec / b.EventsPerSec)
		}
		rep.Deltas = append(rep.Deltas, d)
		if summary != "" {
			summary += "; "
		}
		summary += fmt.Sprintf("%s: %.2fx time", b.Name, d.SpeedupNs)
		if d.EventsRatio > 0 {
			summary += fmt.Sprintf(", %.2fx events/sec", d.EventsRatio)
		}
		if d.AllocsRatio > 0 {
			summary += fmt.Sprintf(", %.2fx allocs", d.AllocsRatio)
		}
	}
	for _, p := range post.Benchmarks {
		if !seen[p.Name] {
			rep.Deltas = append(rep.Deltas, delta{Name: p.Name, PostOnly: true})
		}
	}
	rep.Scaling = diffScaling(base.Scaling, post.Scaling)
	for _, sd := range rep.Scaling {
		if sd.PostScaling > 0 {
			if summary != "" {
				summary += "; "
			}
			summary += fmt.Sprintf("scaling@%d-shards: %.2fx vs 1-shard", sd.Shards, sd.PostScaling)
		}
	}
	rep.Summary = summary
	return rep
}

// diffScaling pairs the two records' core-scaling sweeps by shard count.
// A record missing the sweep contributes nothing; a shard count present
// on only one side still reports that side's speedup-vs-1-shard.
func diffScaling(base, post []scalePoint) []scaleDelta {
	if len(base) == 0 && len(post) == 0 {
		return nil
	}
	baseBy := make(map[int]scalePoint, len(base))
	var baseSerial, postSerial float64
	for _, p := range base {
		baseBy[p.Shards] = p
		if p.Shards == 1 {
			baseSerial = p.NsPerOp
		}
	}
	seen := make(map[int]bool)
	var shards []int
	for _, p := range post {
		if p.Shards == 1 {
			postSerial = p.NsPerOp
		}
		shards = append(shards, p.Shards)
		seen[p.Shards] = true
	}
	for _, p := range base {
		if !seen[p.Shards] {
			shards = append(shards, p.Shards)
		}
	}
	sort.Ints(shards)

	postBy := make(map[int]scalePoint, len(post))
	for _, p := range post {
		postBy[p.Shards] = p
	}
	var out []scaleDelta
	for _, s := range shards {
		b, inBase := baseBy[s]
		p, inPost := postBy[s]
		d := scaleDelta{Shards: s}
		if inBase && inPost {
			d.SpeedupNs = round3(ratio(b.NsPerOp, p.NsPerOp))
			if b.EventsPerSec > 0 && p.EventsPerSec > 0 {
				d.EventsRatio = round3(p.EventsPerSec / b.EventsPerSec)
			}
		}
		if inBase {
			d.BaselineScaling = round3(ratio(baseSerial, b.NsPerOp))
		}
		if inPost {
			d.PostScaling = round3(ratio(postSerial, p.NsPerOp))
		}
		out = append(out, d)
	}
	return out
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}
