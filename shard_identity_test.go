package rica_test

import (
	"fmt"
	"testing"

	"rica"
)

// TestShardedGoldenBitIdentical re-validates the pre-refactor golden
// fingerprint table with the sharded engine enabled: the multicore path
// must reproduce the exact event sequence recorded before it existed.
// Combined with TestGoldenBitIdentical (serial) this pins both engine
// configurations to the same oracle.
func TestShardedGoldenBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("15 × 10 s simulations")
	}
	t.Parallel()
	for _, p := range rica.AllProtocols() {
		for seed := int64(1); seed <= 3; seed++ {
			p, seed := p, seed
			name := fmt.Sprintf("%s/%d", p, seed)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				want, ok := golden[name]
				if !ok {
					t.Fatalf("no golden fingerprint recorded for %s", name)
				}
				cfg := rica.SimConfig{
					Protocol:     p,
					MeanSpeedKmh: 36,
					Rate:         10,
					Duration:     goldenDuration,
					Seed:         seed,
					Shards:       2,
				}
				if got := fingerprint(rica.Simulate(cfg)); got != want {
					t.Errorf("sharded summary diverged from golden\n got: %s\nwant: %s", got, want)
				}
			})
		}
	}
}

// TestShardedSimulateBitIdentical compares Simulate's fingerprint across
// shard counts on a fresh configuration (different speed/load/seed than
// the goldens), so the equivalence is not an artifact of one recorded
// grid point.
func TestShardedSimulateBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("4 × 10 s simulations")
	}
	t.Parallel()
	run := func(shards int) string {
		return fingerprint(rica.Simulate(rica.SimConfig{
			Protocol:     rica.ProtocolRICA,
			MeanSpeedKmh: 54,
			Rate:         20,
			Duration:     goldenDuration,
			Seed:         5,
			Shards:       shards,
		}))
	}
	want := run(1)
	for _, shards := range []int{2, 3, 8} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d diverged from serial\n got: %s\nwant: %s", shards, got, want)
		}
	}
}
