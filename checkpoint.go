package rica

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"rica/internal/checkpoint"
	"rica/internal/durable"
	"rica/internal/experiment"
	"rica/internal/scenario"
	"rica/internal/timeseries"
	"rica/internal/world"
)

// Checkpoint/resume. A snapshot is a versioned, self-describing binary
// file (see internal/checkpoint) holding the run's recipe plus a
// complete capture of simulation state at one instant boundary: the
// kernel's pending-event skeleton, every RNG stream's 607-word state,
// mobility legs, fading links, in-flight MAC transmissions and
// exchanges, link queues, route tables, workload cursors, obs counters,
// and the telemetry digest.
//
// Resume rebuilds the identical world from the embedded recipe in a
// fresh process, replays it to the capture instant (the simulator is
// deterministic, so replay IS restoration), then proves the replay by
// re-capturing and comparing every state section byte-for-byte against
// the snapshot — a mismatch fails with a clean error instead of
// continuing from silently divergent state. The verified run then
// continues to the horizon; its summary fingerprint is bit-identical to
// an uninterrupted run's, serial and sharded alike.
//
// ErrInterrupted is returned (wrapped) by the checkpointing run loops
// when the caller's stop channel ended the run early; the partial run's
// final snapshot has been written and can be resumed.
var ErrInterrupted = errors.New("rica: run interrupted")

// ErrCheckpointCorrupt wraps every snapshot integrity or verification
// failure, so callers can distinguish damage from I/O errors.
var ErrCheckpointCorrupt = checkpoint.ErrCorrupt

// Checkpoint runs r up to virtual time at (an instant boundary: every
// event at or before at has dispatched) and writes a snapshot to w.
// The run is then abandoned — use RunCheckpointed to checkpoint
// periodically while running to completion.
func Checkpoint(r ScenarioRun, at time.Duration, w io.Writer) error {
	cr, err := newScenarioCkRun(r)
	if err != nil {
		return err
	}
	if at < 0 || at > cr.horizon {
		return fmt.Errorf("rica: checkpoint instant %v outside run horizon %v", at, cr.horizon)
	}
	cr.w.Start()
	cr.w.RunTo(at)
	return cr.write(w, at)
}

// Resume reads a snapshot, rebuilds and replays the run to the capture
// instant, verifies the replayed state against the snapshot
// byte-for-byte, and runs on to the horizon, returning the completed
// summary. The fingerprint equals the uninterrupted run's.
func Resume(rd io.Reader) (Summary, error) {
	s, _, err := resume(rd, "", 0, nil)
	return s, err
}

// ResumeFile is Resume reading from a snapshot file.
func ResumeFile(path string) (Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return Summary{}, err
	}
	defer f.Close()
	return Resume(f)
}

// RunCheckpointed executes r to completion, writing a snapshot to path
// at every multiple of the virtual-time cadence `every` (default 10 s
// of simulated time). Writes are atomic (temp file + rename), so a
// process killed mid-write leaves the previous complete snapshot
// intact. If stop closes mid-run, the run halts at the next boundary,
// writes a final snapshot, and returns interrupted = true with an
// ErrInterrupted-wrapped error; resume the snapshot to continue.
func RunCheckpointed(r ScenarioRun, path string, every time.Duration, stop <-chan struct{}) (Summary, bool, error) {
	cr, err := newScenarioCkRun(r)
	if err != nil {
		return Summary{}, false, err
	}
	cr.w.Start()
	return cr.loop(0, path, every, stop)
}

// ResumeCheckpointed is Resume that keeps checkpointing: after the
// verified replay it continues to the horizon under the same periodic
// snapshot regime as RunCheckpointed.
func ResumeCheckpointed(rd io.Reader, path string, every time.Duration, stop <-chan struct{}) (Summary, bool, error) {
	return resume(rd, path, every, stop)
}

// SimulateCheckpointed is Simulate honouring cfg.CheckpointPath and
// cfg.CheckpointEvery (and a stop channel), for SimConfig-shaped runs;
// the scenario-based entry points above are the primary surface.
func SimulateCheckpointed(cfg SimConfig, stop <-chan struct{}) (Summary, bool, error) {
	cr, err := newSimCkRun(cfg)
	if err != nil {
		return Summary{}, false, err
	}
	cr.w.Start()
	return cr.loop(0, cfg.CheckpointPath, cfg.CheckpointEvery, stop)
}

// defaultCheckpointEvery is the periodic snapshot cadence (virtual
// time) when the caller leaves it zero.
const defaultCheckpointEvery = 10 * time.Second

// ckRun is one checkpointable run: the built world plus the recipe that
// rebuilds it.
type ckRun struct {
	w       *world.World
	horizon time.Duration
	desc    checkpoint.Descriptor // AtNs filled per snapshot
}

// newScenarioCkRun builds the world and descriptor for a scenario run.
func newScenarioCkRun(r ScenarioRun) (*ckRun, error) {
	wcfg, err := r.config()
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(r.Scenario)
	if err != nil {
		return nil, err
	}
	return &ckRun{
		w:       world.New(wcfg, experiment.Factory(r.Protocol, r.Scenario.Traffic.Rate)),
		horizon: wcfg.Duration,
		desc: checkpoint.Descriptor{
			Kind:          "scenario",
			HorizonNs:     int64(wcfg.Duration),
			Protocol:      r.Protocol.String(),
			Seed:          r.Seed,
			Shards:        r.Shards,
			MaxDurationNs: int64(r.MaxDuration),
			Scenario:      raw,
		},
	}, nil
}

// newSimCkRun builds the world and descriptor for a SimConfig run.
func newSimCkRun(cfg SimConfig) (*ckRun, error) {
	wcfg := simWorldConfig(cfg)
	sp := &checkpoint.SimParams{
		MeanSpeedKmh: cfg.MeanSpeedKmh,
		Rate:         cfg.Rate,
		DurationNs:   int64(cfg.Duration),
		BufferCap:    cfg.BufferCap,
	}
	if cfg.Flows != nil {
		raw, err := json.Marshal(cfg.Flows)
		if err != nil {
			return nil, err
		}
		sp.Flows = raw
	}
	d := checkpoint.Descriptor{
		Kind:      "sim",
		HorizonNs: int64(wcfg.Duration),
		Protocol:  cfg.Protocol.String(),
		Seed:      cfg.Seed,
		SeedZero:  cfg.SeedZero,
		Shards:    cfg.Shards,
		Sim:       sp,
	}
	if cfg.Telemetry != nil {
		d.Telemetry = &checkpoint.TelemetryParams{
			IntervalNs: int64(cfg.Telemetry.Interval),
			Streaming:  cfg.Telemetry.Streaming,
		}
	}
	return &ckRun{
		w:       world.New(wcfg, experiment.Factory(cfg.Protocol, cfg.Rate)),
		horizon: wcfg.Duration,
		desc:    d,
	}, nil
}

// ckRunFromDescriptor rebuilds the world a snapshot's recipe describes.
func ckRunFromDescriptor(d checkpoint.Descriptor) (*ckRun, error) {
	proto, err := ParseProtocol(d.Protocol)
	if err != nil {
		return nil, fmt.Errorf("%w: descriptor: %v", ErrCheckpointCorrupt, err)
	}
	switch d.Kind {
	case "scenario":
		spec, err := scenario.ParseJSON(d.Scenario)
		if err != nil {
			return nil, fmt.Errorf("%w: descriptor scenario: %v", ErrCheckpointCorrupt, err)
		}
		cr, err := newScenarioCkRun(ScenarioRun{
			Scenario:    spec,
			Protocol:    proto,
			Seed:        d.Seed,
			Shards:      d.Shards,
			MaxDuration: time.Duration(d.MaxDurationNs),
		})
		if err != nil {
			return nil, err
		}
		return cr, nil
	case "sim":
		if d.Sim == nil {
			return nil, fmt.Errorf("%w: sim descriptor lacks parameters", ErrCheckpointCorrupt)
		}
		cfg := SimConfig{
			Protocol:     proto,
			MeanSpeedKmh: d.Sim.MeanSpeedKmh,
			Rate:         d.Sim.Rate,
			Duration:     time.Duration(d.Sim.DurationNs),
			Seed:         d.Seed,
			SeedZero:     d.SeedZero,
			BufferCap:    d.Sim.BufferCap,
			Shards:       d.Shards,
		}
		if d.Sim.Flows != nil {
			if err := json.Unmarshal(d.Sim.Flows, &cfg.Flows); err != nil {
				return nil, fmt.Errorf("%w: descriptor flows: %v", ErrCheckpointCorrupt, err)
			}
		}
		if d.Telemetry != nil {
			cfg.Telemetry = &Telemetry{
				Interval:  time.Duration(d.Telemetry.IntervalNs),
				Streaming: d.Telemetry.Streaming,
			}
		}
		return newSimCkRun(cfg)
	default:
		return nil, fmt.Errorf("%w: descriptor kind %q", ErrCheckpointCorrupt, d.Kind)
	}
}

// write captures the world's state at instant at and writes a complete
// snapshot to wr.
func (c *ckRun) write(wr io.Writer, at time.Duration) error {
	secs, err := c.w.CaptureState()
	if err != nil {
		return err
	}
	d := c.desc
	d.AtNs = int64(at)
	desc, err := checkpoint.EncodeDescriptor(d)
	if err != nil {
		return err
	}
	all := append([]checkpoint.Section{{Tag: checkpoint.TagDesc, Payload: desc}}, secs...)
	return checkpoint.Write(wr, all)
}

// writeFile writes a snapshot atomically and durably: temp file in the
// same directory, fsync, rename, fsync the directory (the rename is an
// entry operation — without the directory sync a machine crash can
// roll it back and lose the snapshot). A crash mid-write leaves the
// previous complete snapshot (if any) untouched.
func (c *ckRun) writeFile(path string, at time.Duration) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := c.write(tmp, at); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return durable.Rename(tmp.Name(), path)
}

// loop runs from virtual time `from` to the horizon, stopping at every
// multiple of the cadence to write a snapshot (when path is set) and to
// poll the stop channel. Chunked kernel runs dispatch the identical
// event sequence a single run would, so the summary — and its
// fingerprint — is bit-identical regardless of cadence.
func (c *ckRun) loop(from time.Duration, path string, every time.Duration, stop <-chan struct{}) (Summary, bool, error) {
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	for t := from; t < c.horizon; {
		next := t - t%every + every
		if next > c.horizon {
			next = c.horizon
		}
		c.w.RunTo(next)
		t = next
		interrupted := false
		select {
		case <-stop:
			interrupted = true
		default:
		}
		if t < c.horizon && path != "" {
			// Final-or-periodic snapshot at this boundary. At the horizon
			// itself there is nothing left to resume, so none is written.
			if err := c.writeFile(path, t); err != nil {
				return Summary{}, interrupted, err
			}
		}
		if interrupted && t < c.horizon {
			if path != "" {
				return Summary{}, true, fmt.Errorf("%w at t=%v (snapshot: %s)", ErrInterrupted, t, path)
			}
			return Summary{}, true, fmt.Errorf("%w at t=%v", ErrInterrupted, t)
		}
	}
	return c.w.Finish(), false, nil
}

// resume is the shared resume path: read, rebuild, replay, verify,
// continue (with optional periodic checkpointing).
func resume(rd io.Reader, path string, every time.Duration, stop <-chan struct{}) (Summary, bool, error) {
	secs, err := checkpoint.Read(rd)
	if err != nil {
		return Summary{}, false, err
	}
	d, err := checkpoint.DecodeDescriptor(checkpoint.Find(secs, checkpoint.TagDesc))
	if err != nil {
		return Summary{}, false, err
	}
	cr, err := ckRunFromDescriptor(d)
	if err != nil {
		return Summary{}, false, err
	}
	if at := time.Duration(d.AtNs); at > cr.horizon {
		return Summary{}, false, fmt.Errorf("%w: capture instant %v past horizon %v", ErrCheckpointCorrupt, at, cr.horizon)
	}
	cr.w.Start()
	at := time.Duration(d.AtNs)
	cr.w.RunTo(at)
	if err := verifyReplay(cr.w, secs); err != nil {
		return Summary{}, false, err
	}
	s, interrupted, err := cr.loop(at, path, every, stop)
	return s, interrupted, err
}

// verifyReplay re-captures the replayed world and compares every state
// section byte-for-byte against the snapshot. The simulator being
// deterministic, any mismatch means the snapshot and this binary
// disagree about the run (corruption that survived the CRCs is
// practically impossible; the realistic causes are a changed binary or
// an edited descriptor) — resuming would continue a different run, so
// fail instead.
func verifyReplay(w *world.World, stored []checkpoint.Section) error {
	fresh, err := w.CaptureState()
	if err != nil {
		return err
	}
	for _, s := range fresh {
		if world.VerifyExempt(s.Tag) {
			continue
		}
		got := checkpoint.Find(stored, s.Tag)
		if got == nil {
			return fmt.Errorf("%w: snapshot lacks section %s (version skew?)", ErrCheckpointCorrupt, s.Tag)
		}
		if !bytes.Equal(got, s.Payload) {
			return fmt.Errorf("%w: replayed state diverges from snapshot in section %s", ErrCheckpointCorrupt, s.Tag)
		}
	}
	return nil
}

// simWorldConfig compiles a SimConfig into a world configuration (the
// construction Simulate performs, factored out so resume can rebuild
// the identical world from a snapshot descriptor).
func simWorldConfig(cfg SimConfig) world.Config {
	wcfg := world.DefaultConfig(cfg.MeanSpeedKmh, cfg.Rate)
	if cfg.Duration > 0 {
		wcfg.Duration = cfg.Duration
	}
	if cfg.Seed != 0 || cfg.SeedZero {
		wcfg.Seed = cfg.Seed
	}
	if cfg.Flows != nil {
		wcfg.Flows = cfg.Flows
	}
	if cfg.BufferCap > 0 {
		wcfg.Node.BufferCap = cfg.BufferCap
	}
	wcfg.Obs = cfg.Obs
	wcfg.Shards = cfg.Shards
	if cfg.Telemetry != nil {
		if cfg.Telemetry.Streaming {
			wcfg.Timeseries = timeseries.NewStreamingCollector(cfg.Telemetry.Interval, wcfg.Duration)
		} else {
			wcfg.Timeseries = timeseries.NewCollector(cfg.Telemetry.Interval, wcfg.Duration)
		}
	}
	return wcfg
}
