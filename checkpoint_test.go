package rica_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"rica"
)

// ckDuration truncates catalog horizons for the round-trip grid: long
// enough that every protocol has discovered routes, broken links, and
// dropped packets by the capture instant, short enough for CI.
const ckDuration = 6 * time.Second

func ckRun(t *testing.T, name string, p rica.Protocol, shards int) rica.ScenarioRun {
	t.Helper()
	spec, err := rica.ScenarioByName(name)
	if err != nil {
		t.Fatalf("ScenarioByName(%q): %v", name, err)
	}
	return rica.ScenarioRun{Scenario: spec, Protocol: p, Shards: shards, MaxDuration: ckDuration}
}

// checkRoundTrip checkpoints r at instant at, resumes the snapshot in a
// fresh world, and requires the resumed run's fingerprint to equal the
// uninterrupted run's, with invariants holding on both.
func checkRoundTrip(t *testing.T, r rica.ScenarioRun, at time.Duration) {
	t.Helper()
	base, err := rica.SimulateScenario(r)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	if err := rica.CheckInvariants(base); err != nil {
		t.Fatalf("uninterrupted run invariants: %v", err)
	}
	var buf bytes.Buffer
	if err := rica.Checkpoint(r, at, &buf); err != nil {
		t.Fatalf("Checkpoint at %v: %v", at, err)
	}
	resumed, err := rica.Resume(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := rica.CheckInvariants(resumed); err != nil {
		t.Errorf("resumed run invariants: %v", err)
	}
	if got, want := rica.Fingerprint(resumed), rica.Fingerprint(base); got != want {
		t.Errorf("resumed fingerprint diverged from uninterrupted run\n got: %s\nwant: %s", got, want)
	}
}

// TestCheckpointResumeCatalog round-trips a snapshot mid-run for a
// catalog cross-section × all five protocols: static chains, mobile
// dense fields, jammers, and a failure schedule all pass through the
// capture/replay/verify path, serially.
func TestCheckpointResumeCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog × protocol round-trip grid")
	}
	t.Parallel()
	scenarios := []string{"chain-10", "dense-urban", "jammer-grid", "partition-heal"}
	for _, name := range scenarios {
		for _, p := range rica.AllProtocols() {
			name, p := name, p
			t.Run(fmt.Sprintf("%s/%s", name, p), func(t *testing.T) {
				t.Parallel()
				checkRoundTrip(t, ckRun(t, name, p, 0), 2500*time.Millisecond)
			})
		}
	}
}

// TestCheckpointResumeInstants round-trips the paper's baseline at
// several capture instants — early (routes still forming), mid-run, and
// just before the horizon.
func TestCheckpointResumeInstants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-instant round trips")
	}
	t.Parallel()
	for _, at := range []time.Duration{1 * time.Second, 3500 * time.Millisecond, 5900 * time.Millisecond} {
		at := at
		t.Run(at.String(), func(t *testing.T) {
			t.Parallel()
			checkRoundTrip(t, ckRun(t, "paper-baseline", rica.ProtocolRICA, 0), at)
		})
	}
}

// TestCheckpointResumeSharded round-trips under the sharded engine: the
// snapshot of a -shards 8 run must resume (itself sharded, via the
// descriptor) to the identical fingerprint.
func TestCheckpointResumeSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded round trips")
	}
	t.Parallel()
	for _, p := range []rica.Protocol{rica.ProtocolRICA, rica.ProtocolAODV} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			checkRoundTrip(t, ckRun(t, "dense-urban", p, 8), 3*time.Second)
		})
	}
}

// TestRunCheckpointedCompletes runs to the horizon under a periodic
// snapshot regime and requires the summary — and a resume of the last
// periodic snapshot — to match the plain run bit-for-bit.
func TestRunCheckpointedCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpointed full run")
	}
	t.Parallel()
	r := ckRun(t, "chain-10", rica.ProtocolRICA, 0)
	base, err := rica.SimulateScenario(r)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	s, interrupted, err := rica.RunCheckpointed(r, path, 1500*time.Millisecond, nil)
	if err != nil || interrupted {
		t.Fatalf("RunCheckpointed: interrupted=%v err=%v", interrupted, err)
	}
	if got, want := rica.Fingerprint(s), rica.Fingerprint(base); got != want {
		t.Errorf("checkpointed run fingerprint diverged\n got: %s\nwant: %s", got, want)
	}
	// The last periodic snapshot (t=4.5s of the 6 s horizon) must resume
	// to the same place.
	resumed, err := rica.ResumeFile(path)
	if err != nil {
		t.Fatalf("ResumeFile: %v", err)
	}
	if got, want := rica.Fingerprint(resumed), rica.Fingerprint(base); got != want {
		t.Errorf("resume of last periodic snapshot diverged\n got: %s\nwant: %s", got, want)
	}
}

// TestRunCheckpointedInterruptResume interrupts a run via the stop
// channel, then resumes its final snapshot and requires the completed
// fingerprint to equal the uninterrupted run's — the crash-recovery
// contract end to end.
func TestRunCheckpointedInterruptResume(t *testing.T) {
	if testing.Short() {
		t.Skip("interrupt + resume")
	}
	t.Parallel()
	r := ckRun(t, "dense-urban", rica.ProtocolBGCA, 0)
	base, err := rica.SimulateScenario(r)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	stop := make(chan struct{})
	close(stop) // "signal" arrives before the first boundary
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, interrupted, err := rica.RunCheckpointed(r, path, time.Second, stop)
	if !interrupted {
		t.Fatalf("RunCheckpointed with closed stop: interrupted=false err=%v", err)
	}
	if !errors.Is(err, rica.ErrInterrupted) {
		t.Fatalf("interrupt error = %v, want ErrInterrupted", err)
	}
	resumed, err := rica.ResumeFile(path)
	if err != nil {
		t.Fatalf("ResumeFile after interrupt: %v", err)
	}
	if got, want := rica.Fingerprint(resumed), rica.Fingerprint(base); got != want {
		t.Errorf("post-interrupt resume diverged\n got: %s\nwant: %s", got, want)
	}
}

// TestSimulateCheckpointed covers the SimConfig-shaped runs (the "sim"
// descriptor kind, including telemetry reconstruction): interrupt, then
// resume to the plain Simulate fingerprint.
func TestSimulateCheckpointed(t *testing.T) {
	if testing.Short() {
		t.Skip("sim-kind interrupt + resume")
	}
	t.Parallel()
	cfg := rica.SimConfig{
		Protocol:     rica.ProtocolAODV,
		MeanSpeedKmh: 36,
		Rate:         10,
		Duration:     ckDuration,
		Seed:         2,
		Telemetry:    &rica.Telemetry{Interval: time.Second},
	}
	base := rica.Simulate(cfg)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "sim.ckpt")
	cfg.CheckpointEvery = 2 * time.Second
	stop := make(chan struct{})
	close(stop)
	_, interrupted, err := rica.SimulateCheckpointed(cfg, stop)
	if !interrupted || !errors.Is(err, rica.ErrInterrupted) {
		t.Fatalf("SimulateCheckpointed: interrupted=%v err=%v", interrupted, err)
	}
	resumed, err := rica.ResumeFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("ResumeFile: %v", err)
	}
	if got, want := rica.Fingerprint(resumed), rica.Fingerprint(base); got != want {
		t.Errorf("sim-kind resume diverged\n got: %s\nwant: %s", got, want)
	}
}

// TestResumeRejectsDamage flips single bytes across a valid snapshot
// and truncates it at several prefixes: every damaged variant must fail
// cleanly with ErrCheckpointCorrupt — never panic, never resume.
func TestResumeRejectsDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("damage sweep over a real snapshot")
	}
	t.Parallel()
	r := ckRun(t, "chain-10", rica.ProtocolABR, 0)
	var buf bytes.Buffer
	if err := rica.Checkpoint(r, time.Second, &buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	snap := buf.Bytes()
	// Single-byte corruption at positions spread across the file.
	for i := 0; i < len(snap); i += len(snap)/37 + 1 {
		bad := append([]byte(nil), snap...)
		bad[i] ^= 0x40
		if _, err := rica.Resume(bytes.NewReader(bad)); err == nil {
			t.Fatalf("Resume accepted snapshot with byte %d flipped", i)
		}
	}
	// Truncations, including an empty file.
	for _, n := range []int{0, 3, 8, 20, len(snap) / 2, len(snap) - 1} {
		if _, err := rica.Resume(bytes.NewReader(snap[:n])); !errors.Is(err, rica.ErrCheckpointCorrupt) {
			t.Fatalf("Resume of %d-byte truncation: err = %v, want ErrCheckpointCorrupt", n, err)
		}
	}
	// Trailing garbage after a valid file.
	if _, err := rica.Resume(bytes.NewReader(append(append([]byte(nil), snap...), 0xEE))); !errors.Is(err, rica.ErrCheckpointCorrupt) {
		t.Fatalf("Resume with trailing byte: err = %v, want ErrCheckpointCorrupt", err)
	}
}
