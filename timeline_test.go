package rica_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rica"
)

func TestSimulateTimelineConsistentWithSummary(t *testing.T) {
	cfg := rica.SimConfig{
		Protocol: rica.ProtocolRICA, MeanSpeedKmh: 36, Rate: 10,
		Duration: 20 * time.Second, Seed: 2,
		Telemetry: &rica.Telemetry{Interval: time.Second},
	}
	summary, tl := rica.SimulateTimeline(cfg)
	if len(tl.Points) < 20 {
		t.Fatalf("timeline has %d points for a 20 s run at 1 s intervals", len(tl.Points))
	}
	var gen, dlv int
	var ctl int64
	for _, p := range tl.Points {
		gen += p.Generated
		dlv += p.Delivered
		ctl += p.ControlPackets
	}
	if gen != summary.Generated || dlv != summary.Delivered {
		t.Fatalf("timeline sums gen=%d dlv=%d, summary gen=%d dlv=%d",
			gen, dlv, summary.Generated, summary.Delivered)
	}
	if ctl != summary.ControlPackets {
		t.Fatalf("timeline control packets %d, summary %d", ctl, summary.ControlPackets)
	}
}

func TestSimulateTimelineDeterminism(t *testing.T) {
	run := func() *bytes.Buffer {
		var buf bytes.Buffer
		rica.SimulateTimeline(rica.SimConfig{
			Protocol: rica.ProtocolAODV, MeanSpeedKmh: 18, Rate: 8,
			Duration: 10 * time.Second, Seed: 5,
			Telemetry: &rica.Telemetry{
				Interval: 2 * time.Second,
				Sink:     rica.NewJSONLTimelineSink(&buf),
			},
		})
		return &buf
	}
	a, b := run(), run()
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("equal seeds emitted different timelines (%d vs %d bytes)", a.Len(), b.Len())
	}
	line, _, _ := strings.Cut(a.String(), "\n")
	if !strings.Contains(line, `"protocol":"AODV"`) || !strings.Contains(line, `"seed":5`) {
		t.Fatalf("sink row missing run metadata: %s", line)
	}
}

func TestSimulateUnaffectedByTelemetry(t *testing.T) {
	base := rica.SimConfig{
		Protocol: rica.ProtocolBGCA, MeanSpeedKmh: 36, Rate: 10,
		Duration: 10 * time.Second, Seed: 4,
	}
	plain := rica.Simulate(base)
	wired := base
	wired.Telemetry = &rica.Telemetry{Interval: time.Second}
	observed, _ := rica.SimulateTimeline(wired)
	if plain.Generated != observed.Generated || plain.Delivered != observed.Delivered ||
		plain.AvgDelay != observed.AvgDelay || plain.OverheadBps != observed.OverheadBps {
		t.Fatalf("telemetry perturbed the run: %+v vs %+v", plain, observed)
	}
}
