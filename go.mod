module rica

go 1.24
